// (h, mu)-hypertrees — the combinatorial structure behind the paper's
// Omega(log n log W) lower bound (Section 4, Figure 1).
//
// Construction (inductive on h):
//   * a (1, mu)-hypertree is a single vertex with an empty state;
//   * an (h, mu)-hypertree H is built from two (h-1, mu)-hypertrees H0, H1:
//       1. a new root r, edges (root(H0), r) and (root(H1), r) of weight
//          x in Q_{h-1}(mu) = { mu(h-1)+j : 0 <= j <= mu-1 }; both child
//          roots' states point at r;
//       2. for every vertex a0 of H0 with homologue a1 of H1, a path
//          Path(a0, a1) = (a0, hat0, hat1, a1) with omega(a0,hat0) =
//          omega(hat1,a1) = 1, the hats' states pointing outward at
//          a0 / a1, and omega(hat0,hat1) drawn from Q_{h-1}(mu);
//       3. Path(a0,a1) is *legal* iff omega(hat0,hat1) = x;
//       4. identities are assigned by preorder of the induced spanning
//          tree, id(root) = 1.
//
// Claim 4.1: in a legal hypertree the weight of every legal path equals
// MAX(endpoints) on the induced spanning tree, and that tree is an MST.
// Making any path *lighter* than its construction level's x therefore
// destroys minimality — every correct scheme must reject — while making
// it heavier preserves it.  |V(h)| = (4^h - 1)/3; weights <= h*mu - 1.
#pragma once

#include <vector>

#include "plscheme/config_graph.hpp"
#include "util/rng.hpp"

namespace mstv {

/// One Path(a0, a1) record.
struct HypertreePath {
  VertexId a0 = kInvalidVertex;
  VertexId hat0 = kInvalidVertex;
  VertexId hat1 = kInvalidVertex;
  VertexId a1 = kInvalidVertex;
  EdgeId mid_edge = kInvalidEdge;   // (hat0, hat1)
  std::uint32_t level = 0;          // the h of the construction step
};

struct Hypertree {
  Graph graph;
  std::vector<State> states;  // parent ports + preorder identities
  VertexId root = kInvalidVertex;
  std::uint32_t h = 0;
  std::uint64_t mu = 0;
  /// x chosen at each construction level; level_x[k] is defined for
  /// 2 <= k <= h (level 1 has no edges).
  std::vector<Weight> level_x;
  std::vector<HypertreePath> paths;

  [[nodiscard]] ConfigGraph config() const {
    return ConfigGraph(graph, states);
  }

  /// The induced spanning tree's edges (all parent-port edges).
  [[nodiscard]] std::vector<EdgeId> spanning_tree_edges() const;
};

/// Number of vertices of an (h, mu)-hypertree: (4^h - 1) / 3.
std::uint64_t hypertree_num_vertices(std::uint32_t h);

/// Q_i(mu) bounds.
inline Weight q_range_lo(std::uint32_t i, std::uint64_t mu) {
  return static_cast<Weight>(mu) * i;
}
inline Weight q_range_hi(std::uint32_t i, std::uint64_t mu) {
  return static_cast<Weight>(mu) * i + mu - 1;
}

/// Builds a *legal* (h, mu)-hypertree.  `level_x[k]` (for k in [2, h])
/// picks x at each level; entries outside Q_{k-1}(mu) are rejected.  If
/// `level_x` is empty, each level's x is mu(k-1) (the minimum of its
/// range) unless `rng` is given, in which case it is drawn uniformly.
Hypertree build_hypertree(std::uint32_t h, std::uint64_t mu,
                          std::vector<Weight> level_x = {},
                          Rng* rng = nullptr);

/// Rebuilds `ht` with the middle edge of paths[path_idx] reweighted to
/// `w` — the mutation at the heart of the lower bound: w < x makes the
/// induced tree non-minimum (must be rejected); w > x (within Q) keeps it
/// an MST but the hypertree is no longer "legal".
Hypertree with_path_weight(const Hypertree& ht, std::size_t path_idx,
                           Weight w);

/// Checks both parts of Claim 4.1 by direct computation.
bool check_claim_4_1(const Hypertree& ht);

}  // namespace mstv
