// The counting side of the Section-4 lower bound, evaluated numerically.
//
// Definitions from the paper: for a proof labeling scheme pi (with the
// identity property) over the family C(h, mu) of (h, mu)-hypertrees,
// X(pi, h, mu) is the set of labels it ever assigns and g(h, mu) the
// minimum |X| over all correct schemes.  X(x) collects the pairs of labels
// assigned to vertices on opposite sides of legal hypertrees whose top
// weight is x.  The paper shows:
//
//   * X(x) and X(x') are disjoint for x != x'  (Lemma 4.3 — a collision
//     would let the lighter weight be spliced into the heavier hypertree,
//     producing an accepted non-MST, contradiction),
//   * |X(x)| is at least the label count needed one level down with a
//     squared weight range, yielding the recurrence
//         g(h, mu)^2  >=  sum_x |X(x)|  >=  mu * g(h-1, mu^2)
//     (the published text of the recursion step is truncated in our
//     source; the recurrence restated here follows the [KKKP04]-style
//     argument the paper says it modifies and reproduces the stated
//     Omega(log n log W) bound — see EXPERIMENTS.md for the caveat).
//
// Unrolling in log-space: log2 g(h, mu) >= (h-1)/2 * log2(mu), and with
// n = (4^h - 1)/3 vertices and W ~ h*mu this is Omega(log n log W) bits
// per label as long as W > (log n)^{1+eps}.  lower_bound_bits() evaluates
// the recurrence exactly so benches can print "information-theoretic
// floor" rows next to measured pi_mst label sizes.
#pragma once

#include <cstdint>

namespace mstv {

struct LowerBoundRow {
  std::uint32_t h = 0;
  std::uint64_t mu = 0;
  std::uint64_t n = 0;          // vertices of the (h, mu)-hypertree
  double log2_w = 0.0;          // log2 of the max weight h*mu - 1
  double log2_g = 0.0;          // implied log2 of the label-set size
  double min_label_bits = 0.0;  // a label must carry >= log2_g bits
};

/// Evaluates the recurrence log2 g(h, mu) = sum over the unrolling of
/// (1/2) log2(mu^(2^i)) truncated at the base case g(1, .) = 1.
LowerBoundRow lower_bound_row(std::uint32_t h, std::uint64_t mu);

}  // namespace mstv
