// Executable form of the lower-bound adversary (Lemma 4.3's splice).
//
// The proof works by cut-and-paste: if two legal hypertrees
// H = (H0, H1, x) and H' = (H0', H1', x'), x' < x, ever receive colliding
// labels, the adversary rebuilds H with one path lightened to x' — which
// destroys minimality (Claim 4.1) — and presents the colliding labels.
// Every node's local view is indistinguishable from a view it accepted in
// H or H', so the forged non-MST is accepted: contradiction.  Hence the
// label sets X(x) must be pairwise disjoint, which is where the mu factor
// of the counting bound comes from.
//
// cut_and_paste_attack() runs that script against any scheme: it labels
// the legal hypertrees of every weight class C(h, mu, x), searches for a
// collision of the full label vector between two classes, and on success
// forges the lightened hypertree and runs the real verifier on it.
//
//   * Against pi_mst the search must come up empty (the disjointness of
//     Lemma 4.3, verified empirically by tests).
//   * Against QuantizedMstScheme — a tempting "compression" that stores
//     each E_omega field as its floor-power-of-two exponent (O(log log W)
//     bits instead of O(log W)) — classes collide and the splice is
//     accepted: a concrete demonstration that the log W factor in the
//     label size cannot be rounded away, the executable content of the
//     W > (log n)^{1+eps} lower bound.
#pragma once

#include <cstdint>

#include "lowerbound/hypertree.hpp"
#include "plscheme/mst_scheme.hpp"

namespace mstv {

struct AttackReport {
  bool collision_found = false;   // two weight classes got identical labels
  bool forgery_accepted = false;  // the verifier accepted a non-MST
  Weight x_heavy = 0;             // colliding top weights (if found)
  Weight x_light = 0;
  std::size_t label_bits = 0;     // max label bits the scheme used
};

AttackReport cut_and_paste_attack(const ProofLabelingScheme& scheme,
                                  std::uint32_t h, std::uint64_t mu);

/// pi_mst with E_omega fields quantized down to powers of two: labels
/// shrink to O(log n log log W) bits, completeness survives (the decoded
/// MAX only ever under-estimates), but soundness is forfeited — the
/// adversaries above break it.  Exists purely as the attack target and
/// ablation baseline; never use for real verification.
class QuantizedMstScheme final : public ProofLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "pi-mst-quantized"; }
  [[nodiscard]] std::vector<Label> mark(const ConfigGraph& cfg) const override;
  [[nodiscard]] bool verify(const LocalView& view) const override;
};

struct QuantizationAttackReport {
  bool forgery_accepted = false;
  Weight original_weight = 0;  // non-tree edge weight before lowering
  Weight lowered_weight = 0;   // accepted although below the true MAX
  Weight true_max = 0;
};

/// Direct soundness break on a small fixed graph: lowers a non-tree edge
/// into the quantization gap and shows every node still accepts.
QuantizationAttackReport quantization_attack();

}  // namespace mstv
