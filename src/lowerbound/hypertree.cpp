#include "lowerbound/hypertree.hpp"

#include "mst/predicates.hpp"
#include "tree/path_queries.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {
namespace {

/// Mutable build state: vertices are indices into parent/weight arrays;
/// the Graph is assembled at the end.
struct BuildState {
  std::uint64_t mu;
  std::vector<Weight> level_x;  // indexed by level, [2..h]
  std::vector<VertexId> parent;       // kInvalidVertex at the top root
  std::vector<Weight> parent_weight;  // tree edge weights
  struct MidEdge {
    VertexId hat0, hat1;
    Weight w;
  };
  std::vector<MidEdge> mid_edges;  // non-tree edges (hat0, hat1)
  std::vector<HypertreePath> paths;

  VertexId new_vertex() {
    parent.push_back(kInvalidVertex);
    parent_weight.push_back(0);
    return static_cast<VertexId>(parent.size() - 1);
  }

  struct Sub {
    VertexId root;
    std::vector<VertexId> verts;  // homologous creation order
  };

  Sub rec(std::uint32_t h) {
    if (h == 1) {
      const VertexId v = new_vertex();
      return Sub{v, {v}};
    }
    // Two recursively built copies; their `verts` lists are homologous
    // because the recursion is deterministic in structure.
    Sub a = rec(h - 1);
    Sub b = rec(h - 1);
    const VertexId r = new_vertex();
    const Weight x = level_x[h];

    parent[a.root] = r;
    parent_weight[a.root] = x;
    parent[b.root] = r;
    parent_weight[b.root] = x;

    Sub out;
    out.root = r;
    out.verts.reserve(4 * a.verts.size() + 1);
    out.verts.push_back(r);
    out.verts.insert(out.verts.end(), a.verts.begin(), a.verts.end());
    out.verts.insert(out.verts.end(), b.verts.begin(), b.verts.end());

    // Step 2: Path(a0, a1) for every homologous pair, including vertices
    // created for earlier paths.
    for (std::size_t i = 0; i < a.verts.size(); ++i) {
      const VertexId a0 = a.verts[i];
      const VertexId a1 = b.verts[i];
      const VertexId h0 = new_vertex();
      const VertexId h1 = new_vertex();
      parent[h0] = a0;
      parent_weight[h0] = 1;
      parent[h1] = a1;
      parent_weight[h1] = 1;
      mid_edges.push_back({h0, h1, x});  // legal: weight == x
      paths.push_back(HypertreePath{a0, h0, h1, a1, kInvalidEdge, h});
      out.verts.push_back(h0);
      out.verts.push_back(h1);
    }
    return out;
  }
};

Hypertree assemble(std::uint32_t h, std::uint64_t mu, BuildState&& bs,
                   VertexId root) {
  const std::size_t n = bs.parent.size();
  Graph::Builder builder(n);
  std::vector<EdgeId> tree_edge_of(n, kInvalidEdge);  // by child vertex
  for (VertexId v = 0; v < n; ++v) {
    if (bs.parent[v] != kInvalidVertex) {
      tree_edge_of[v] = builder.add_edge(v, bs.parent[v], bs.parent_weight[v]);
    }
  }
  for (std::size_t i = 0; i < bs.mid_edges.size(); ++i) {
    const auto& m = bs.mid_edges[i];
    bs.paths[i].mid_edge = builder.add_edge(m.hat0, m.hat1, m.w);
  }

  Hypertree ht;
  ht.graph = builder.build();
  ht.root = root;
  ht.h = h;
  ht.mu = mu;
  ht.level_x = std::move(bs.level_x);
  ht.paths = std::move(bs.paths);

  // States: parent ports, plus preorder identities over the induced tree
  // (step 4 of the construction; id(root) = 1).
  std::vector<EdgeId> tree_edges;
  tree_edges.reserve(n - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (tree_edge_of[v] != kInvalidEdge) tree_edges.push_back(tree_edge_of[v]);
  }
  const RootedTree tree(ht.graph, tree_edges, root);
  ht.states.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    ht.states[v].id = tree.preorder_rank(v) + 1;
    if (!tree.is_root(v)) ht.states[v].parent_port = tree.parent_port(v);
  }
  return ht;
}

}  // namespace

std::uint64_t hypertree_num_vertices(std::uint32_t h) {
  // (4^h - 1) / 3
  return ((std::uint64_t{1} << (2 * h)) - 1) / 3;
}

Hypertree build_hypertree(std::uint32_t h, std::uint64_t mu,
                          std::vector<Weight> level_x, Rng* rng) {
  MSTV_EXPECTS(h >= 1 && h <= 15);
  MSTV_EXPECTS(mu >= 1);
  if (level_x.empty()) {
    level_x.assign(h + 1, 0);
    for (std::uint32_t k = 2; k <= h; ++k) {
      level_x[k] = rng ? rng->uniform(q_range_lo(k - 1, mu),
                                      q_range_hi(k - 1, mu))
                       : q_range_lo(k - 1, mu);
    }
  }
  MSTV_EXPECTS_MSG(level_x.size() == static_cast<std::size_t>(h) + 1,
                   "level_x must have h+1 entries (index = level)");
  for (std::uint32_t k = 2; k <= h; ++k) {
    MSTV_EXPECTS_MSG(level_x[k] >= q_range_lo(k - 1, mu) &&
                         level_x[k] <= q_range_hi(k - 1, mu),
                     "level weight outside Q_{k-1}(mu)");
  }

  BuildState bs;
  bs.mu = mu;
  bs.level_x = std::move(level_x);
  const auto sub = bs.rec(h);
  MSTV_ASSERT(bs.parent.size() == hypertree_num_vertices(h));
  return assemble(h, mu, std::move(bs), sub.root);
}

Hypertree with_path_weight(const Hypertree& ht, std::size_t path_idx,
                           Weight w) {
  MSTV_EXPECTS(path_idx < ht.paths.size());
  const EdgeId target = ht.paths[path_idx].mid_edge;
  Graph::Builder b(ht.graph.num_vertices());
  for (EdgeId e = 0; e < ht.graph.num_edges(); ++e) {
    const Edge& ed = ht.graph.edge(e);
    b.add_edge(ed.u, ed.v, e == target ? w : ed.w);
  }
  Hypertree out = ht;
  out.graph = b.build();
  // Ports were created in identical order, so the states still apply.
  return out;
}

std::vector<EdgeId> Hypertree::spanning_tree_edges() const {
  return config().induced_subgraph();
}

bool check_claim_4_1(const Hypertree& ht) {
  const auto tree_edges = ht.spanning_tree_edges();
  if (!is_spanning_tree(ht.graph, tree_edges)) return false;
  const RootedTree tree(ht.graph, tree_edges, ht.root);
  const TreePathQueries paths(tree);

  // Part 1: the weight of every *legal* path equals MAX of its endpoints
  // on the induced spanning tree.
  bool all_legal = true;
  for (const auto& p : ht.paths) {
    const Weight w = ht.graph.edge(p.mid_edge).w;
    if (w == ht.level_x[p.level]) {
      if (w != paths.path_max(p.a0, p.a1)) return false;
    } else {
      all_legal = false;
    }
  }

  // Part 2: a fully legal hypertree's induced tree is an MST.
  if (all_legal && !is_mst(ht.graph, tree_edges)) return false;
  return true;
}

}  // namespace mstv
