#include "lowerbound/attack.hpp"

#include <map>
#include <utility>

#include "mst/predicates.hpp"
#include "plscheme/runner.hpp"
#include "plscheme/spanning_tree_scheme.hpp"
#include "tree/centroid.hpp"
#include "tree/path_queries.hpp"

namespace mstv {
namespace {

/// Quantized weight code: bit_width(w), so 0 -> 0 and w -> floor(log2 w)+1.
/// The decoded approximation 2^(code-1) never exceeds w.
std::uint64_t quantize(Weight w) {
  return static_cast<std::uint64_t>(bit_width_u64(w));
}

Weight dequantize(std::uint64_t code) {
  return code == 0 ? 0 : (Weight{1} << (code - 1));
}

const ExtremaLabelingScheme& quantized_codec() {
  static const ExtremaLabelingScheme codec(ExtremaKind::Max,
                                           SepCoding::Telescoping);
  return codec;
}

}  // namespace

std::vector<Label> QuantizedMstScheme::mark(const ConfigGraph& cfg) const {
  const Graph& g = cfg.graph();
  const auto tree_edges = cfg.induced_subgraph();
  MSTV_EXPECTS_MSG(is_spanning_tree(g, tree_edges) && is_mst(g, tree_edges),
                   "marker precondition: states must induce an MST");
  const auto st = make_spanning_tree_sublabels(cfg);

  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < cfg.size(); ++v) {
    if (!cfg.state(v).parent_port) root = v;
  }
  const RootedTree tree(g, tree_edges, root);
  auto imps = quantized_codec().encode(tree);
  for (auto& l : imps) {
    for (auto& x : l.extrema) x = quantize(x);  // the lossy "compression"
  }

  std::vector<Label> labels;
  labels.reserve(cfg.size());
  for (VertexId v = 0; v < cfg.size(); ++v) {
    BitWriter w;
    write_spanning_tree_sublabel(w, st[v]);
    quantized_codec().write_to(w, imps[v]);
    labels.emplace_back(std::move(w));
  }
  return labels;
}

bool QuantizedMstScheme::verify(const LocalView& view) const {
  BitReader own_r = view.label->reader();
  const SpanningTreeSublabel own_st = read_spanning_tree_sublabel(own_r);
  const ExtremaLabel own_imp = quantized_codec().read_from(own_r);
  if (!own_r.exhausted()) return false;

  std::vector<SpanningTreeSublabel> st_nbs;
  std::vector<ExtremaLabel> imp_nbs;
  for (const NeighborView& nb : view.neighbors) {
    BitReader r = nb.label->reader();
    st_nbs.push_back(read_spanning_tree_sublabel(r));
    imp_nbs.push_back(quantized_codec().read_from(r));
    if (!r.exhausted()) return false;
  }
  if (!check_spanning_tree_sublabel(*view.state, own_st, st_nbs)) {
    return false;
  }
  // Approximate cycle rule only: the decoded code is the max exponent, so
  // the reconstructed bound under-estimates the true MAX — completeness
  // survives, soundness does not (that is the point of this scheme).
  for (std::size_t i = 0; i < imp_nbs.size(); ++i) {
    const Weight approx =
        dequantize(quantized_codec().decode(own_imp, imp_nbs[i]));
    if (view.neighbors[i].weight < approx) return false;
  }
  return true;
}

AttackReport cut_and_paste_attack(const ProofLabelingScheme& scheme,
                                  std::uint32_t h, std::uint64_t mu) {
  AttackReport report;

  // Label every weight class C(h, mu, x); identical unweighted structure
  // means identical state vectors, so a collision of the *label* vectors
  // is exactly the hypothesis of the splice.
  std::map<std::vector<Label>, Weight> seen;
  std::map<Weight, std::vector<Label>> labels_of;
  for (Weight x = q_range_lo(h - 1, mu); x <= q_range_hi(h - 1, mu); ++x) {
    std::vector<Weight> level_x(h + 1, 0);
    for (std::uint32_t k = 2; k < h; ++k) level_x[k] = q_range_lo(k - 1, mu);
    level_x[h] = x;
    const Hypertree ht = build_hypertree(h, mu, level_x);
    std::vector<Label> labels = scheme.mark(ht.config());
    for (const Label& l : labels) {
      report.label_bits = std::max(report.label_bits, l.size_bits());
    }
    const auto [it, fresh] = seen.emplace(labels, x);
    if (!fresh) {
      report.collision_found = true;
      report.x_light = std::min(it->second, x);
      report.x_heavy = std::max(it->second, x);
      labels_of.emplace(report.x_heavy, std::move(labels));
      break;
    }
    labels_of.emplace(x, std::move(labels));
  }
  if (!report.collision_found) return report;

  // The splice: take the heavy hypertree, lighten one top-level path to
  // x_light.  Claim 4.1 says the induced tree is no longer an MST.
  std::vector<Weight> level_x(h + 1, 0);
  for (std::uint32_t k = 2; k < h; ++k) level_x[k] = q_range_lo(k - 1, mu);
  level_x[h] = report.x_heavy;
  const Hypertree heavy = build_hypertree(h, mu, level_x);
  std::size_t path_idx = heavy.paths.size();
  for (std::size_t i = 0; i < heavy.paths.size(); ++i) {
    if (heavy.paths[i].level == h) {
      path_idx = i;
      break;
    }
  }
  MSTV_ASSERT(path_idx < heavy.paths.size());
  const Hypertree forged =
      with_path_weight(heavy, path_idx, report.x_light);
  MSTV_ASSERT_MSG(
      !is_mst(forged.graph, forged.spanning_tree_edges()),
      "the lightened hypertree should no longer be an MST (Claim 4.1)");

  const auto result = run_verifier(scheme, forged.config(),
                                   labels_of.at(report.x_heavy));
  report.forgery_accepted = result.accepted;
  return report;
}

QuantizationAttackReport quantization_attack() {
  // Path 0-1-2 with weights 5 and 9; chord (0,2) of weight 9.
  // True MAX(0,2) = 9; quantized bound 2^3 = 8.  Lower the chord to 8:
  // the path tree is no longer minimum (Kruskal would take the chord),
  // but 8 >= 8 passes the approximate cycle rule at both endpoints.
  QuantizationAttackReport rep;
  rep.original_weight = 9;
  rep.true_max = 9;
  rep.lowered_weight = 8;

  Graph::Builder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 5);
  const EdgeId e12 = b.add_edge(1, 2, 9);
  b.add_edge(0, 2, rep.original_weight);
  const Graph g = b.build();

  const QuantizedMstScheme scheme;
  ConfigGraph cfg = make_tree_config(g, {e01, e12}, 0);
  const auto labels = scheme.mark(cfg);

  // Lower the chord.
  Graph::Builder b2(3);
  b2.add_edge(0, 1, 5);
  b2.add_edge(1, 2, 9);
  b2.add_edge(0, 2, rep.lowered_weight);
  const Graph g2 = b2.build();
  ConfigGraph cfg2(g2, {cfg.state(0), cfg.state(1), cfg.state(2)});
  MSTV_ASSERT(!is_mst(g2, cfg2.induced_subgraph()));

  rep.forgery_accepted = run_verifier(scheme, cfg2, labels).accepted;
  return rep;
}

}  // namespace mstv
