#include "tree/centroid.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace mstv {

namespace {
constexpr Weight kWeightMax = std::numeric_limits<Weight>::max();
}  // namespace

std::uint32_t SeparatorDecomposition::max_level() const {
  std::uint32_t m = 0;
  for (const auto l : level) m = std::max(m, l);
  return m;
}

/// Nested (vector-of-vectors) staging output, used by the serial random
/// decomposer; SepBuilder::pack flattens it into the arena layout.
struct NestedSep {
  std::vector<std::uint32_t> level;
  std::vector<VertexId> sep_parent;
  std::vector<std::vector<VertexId>> ancestors;
  std::vector<std::vector<std::uint64_t>> rho;
  std::vector<std::vector<std::uint64_t>> rho_raw;
  std::vector<std::vector<Weight>> maxw;
  std::vector<std::vector<Weight>> minw;
  std::vector<std::vector<Weight>> sumw;
  std::vector<std::vector<PortNumber>> toward;
  std::vector<std::vector<PortNumber>> branch_port;
};

/// Level-synchronous builder for the *perfect* decomposition.
///
/// The old implementation recursed depth-first through the separator
/// tree, which serializes the whole construction.  Components of one
/// separator level are vertex-disjoint, though, and everything stored for
/// a component (its centroid, branch ranking, path folds) is a pure
/// function of that component alone — so each level is a shardable batch:
///
///   structure pass  — per level, `for_each_shard` over the component
///       list: DFS-order the component, pick its centroid, rank its
///       branches, emit the branch components of the next level into
///       per-shard lists merged in shard-index order.
///   fill pass       — arena rows are sized from the now-known levels,
///       then per level the branch walks (one per component, sharded)
///       write every (vertex, ancestor) entry by direct index.
///
/// All scratch is either per-vertex (disjoint across a level's
/// components) or per-shard, so shard bodies never contend — and since
/// every write is indexed by (vertex, level) with a value independent of
/// scheduling, the output is bit-identical at any --threads=N and to the
/// old recursive construction (the DFS stack discipline below replicates
/// the old component walk verbatim, so centroid tie-breaks agree).
struct SepBuilder {
  /// A component awaiting decomposition: the branch of `parent_sep`
  /// rooted at `start`, carrying the seed values its branch walk needs.
  struct Comp {
    VertexId start = kInvalidVertex;
    VertexId parent_sep = kInvalidVertex;
    std::uint64_t rho = 0;     // subtree number assigned by parent_sep
    Weight edge_w = 0;         // weight of the (parent_sep, start) edge
    PortNumber bport = 0;      // parent_sep's port into this branch
    PortNumber back_port = 0;  // start's port back toward parent_sep
  };

  struct Branch {
    VertexId root = kInvalidVertex;
    std::uint32_t size = 0;
    Weight edge_w = 0;
    PortNumber bport = 0;
    PortNumber back_port = 0;
  };

  const RootedTree& tree;
  SeparatorDecomposition out;
  std::vector<std::vector<Comp>> levels;  // levels[k]: components of level k+1
  std::vector<char> removed;              // separators of finished levels
  std::vector<std::uint32_t> size_;       // DFS subtree sizes (per component)
  std::vector<std::uint32_t> heaviest_;   // heaviest DFS child subtree

  SepBuilder(const RootedTree& t, SepFieldMask mask)
      : tree(t), removed(t.size(), 0), size_(t.size(), 0),
        heaviest_(t.size(), 0) {
    out.mask_ = mask;
    out.level.assign(t.size(), 0);
    out.sep_parent.assign(t.size(), kInvalidVertex);
  }

  SeparatorDecomposition build() {
    MSTV_SPAN("marker.decompose");
    structure_pass();
    fill_pass();
    return std::move(out);
  }

  void structure_pass() {
    std::vector<Comp> current{Comp{tree.root()}};
    while (!current.empty()) {
      const std::size_t shards = parallel::plan_shards(current.size());
      std::vector<std::vector<Comp>> children_of(shards);
      parallel::for_each_shard(
          current.size(), [&](const parallel::ShardRange& shard) {
            // Shard-local scratch; the per-vertex arrays are shared
            // because a level's components are vertex-disjoint.
            std::vector<std::pair<VertexId, VertexId>> order;
            std::vector<std::pair<VertexId, VertexId>> stack;
            std::vector<Branch> branches;
            for (std::size_t ci = shard.begin; ci < shard.end; ++ci) {
              decompose_comp(current[ci],
                             static_cast<std::uint32_t>(levels.size() + 1),
                             order, stack, branches, children_of[shard.index]);
            }
          });
      levels.push_back(std::move(current));
      current.clear();
      for (std::vector<Comp>& c : children_of) {
        current.insert(current.end(), c.begin(), c.end());
      }
    }
  }

  /// Finds the centroid of one component, records its level/parent, and
  /// emits its branches (ranked by decreasing size) as next-level
  /// components.  rho = rank is what lets E_sep telescope: the rank-r
  /// branch has at most |comp|/r vertices, so writing gamma(r) costs
  /// O(1 + log(|comp|/|branch|)) bits, and the per-level costs sum to
  /// O(log n) along any root-to-vertex path of T_sep.
  void decompose_comp(const Comp& in, std::uint32_t level,
                      std::vector<std::pair<VertexId, VertexId>>& order,
                      std::vector<std::pair<VertexId, VertexId>>& stack,
                      std::vector<Branch>& branches,
                      std::vector<Comp>& children) {
    // DFS order with dfs-parents, staying within tree edges and avoiding
    // removed vertices.  Same stack discipline as the serial marker
    // always used, so the centroid tie-break below picks the same vertex.
    order.clear();
    stack.clear();
    stack.emplace_back(in.start, kInvalidVertex);
    while (!stack.empty()) {
      const auto [v, par] = stack.back();
      stack.pop_back();
      order.emplace_back(v, par);
      for (const PortInfo& p : tree.graph().ports(v)) {
        if (!tree.contains_edge(p.edge) || removed[p.neighbor] != 0) continue;
        if (p.neighbor == par) continue;
        stack.emplace_back(p.neighbor, v);
      }
    }

    // Subtree sizes / heaviest child via one reverse scan, then the
    // centroid = first vertex strictly improving the max-load bound.
    const auto total = static_cast<std::uint32_t>(order.size());
    for (const auto& [v, par] : order) {
      size_[v] = 1;
      heaviest_[v] = 0;
      (void)par;
    }
    for (std::size_t i = order.size(); i-- > 0;) {
      const auto [v, par] = order[i];
      if (par != kInvalidVertex) {
        size_[par] += size_[v];
        heaviest_[par] = std::max(heaviest_[par], size_[v]);
      }
    }
    VertexId c = order[0].first;
    VertexId c_par = kInvalidVertex;
    std::uint32_t best_load = total;
    for (const auto& [v, par] : order) {
      const std::uint32_t load = std::max(heaviest_[v], total - size_[v]);
      if (load < best_load) {
        best_load = load;
        c = v;
        c_par = par;
      }
    }
    MSTV_ASSERT_MSG(best_load <= total / 2 || total == 1,
                    "centroid property violated");

    out.level[c] = level;
    out.sep_parent[c] = in.parent_sep;
    removed[c] = 1;

    // c's branches: every live tree-neighbor roots one.  The DFS subtree
    // sizes convert to branch sizes by re-rooting at c: the branch toward
    // c's own dfs-parent holds everything outside c's DFS subtree.
    branches.clear();
    const auto ports = tree.graph().ports(c);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      const PortInfo& p = ports[pi];
      if (!tree.contains_edge(p.edge) || removed[p.neighbor] != 0) continue;
      const std::uint32_t bsize =
          p.neighbor == c_par ? total - size_[c] : size_[p.neighbor];
      branches.push_back({p.neighbor, bsize, p.weight,
                          static_cast<PortNumber>(pi + 1), p.reverse_port});
    }
    std::sort(branches.begin(), branches.end(),
              [](const Branch& a, const Branch& b) {
                return a.size != b.size ? a.size > b.size : a.root < b.root;
              });
    for (std::size_t i = 0; i < branches.size(); ++i) {
      const Branch& b = branches[i];
      children.push_back(
          {b.root, c, i + 1, b.edge_w, b.bport, b.back_port});
    }
  }

  void fill_pass() {
    const std::size_t n = tree.size();
    out.row_.resize(n + 1);
    out.row_[0] = 0;
    for (VertexId v = 0; v < n; ++v) {
      MSTV_ASSERT(out.level[v] >= 1);
      out.row_[v + 1] = out.row_[v] + out.level[v];
    }
    allocate_arenas();

    // Every vertex's last entry describes itself as a separator: the
    // path folds of the empty path, self-ports of 0, no rho slot.
    parallel::for_each_shard(n, [&](const parallel::ShardRange& shard) {
      for (std::size_t v = shard.begin; v < shard.end; ++v) {
        const std::size_t e = out.row_[v + 1] - 1;
        out.anc_[e] = static_cast<VertexId>(v);
        if (!out.maxw_.empty()) out.maxw_[e] = 0;
        if (!out.minw_.empty()) out.minw_[e] = kWeightMax;
        if (!out.sumw_.empty()) out.sumw_[e] = 0;
        if (!out.toward_.empty()) {
          out.toward_[e] = 0;
          out.branch_port_[e] = 0;
        }
      }
    });

    // Entry k-1 of every vertex in a level-(k+1) component comes from the
    // level-k separator that spawned the component — so each branch walk
    // is independent, and sharding over a level's components splits even
    // the root level's work across its centroid's branches.
    for (std::size_t li = 1; li < levels.size(); ++li) {
      const std::vector<Comp>& comps = levels[li];
      parallel::for_each_shard(
          comps.size(), [&](const parallel::ShardRange& shard) {
            std::vector<WalkItem> stack;
            for (std::size_t ci = shard.begin; ci < shard.end; ++ci) {
              fill_branch(comps[ci], li, stack);
            }
          });
    }
  }

  void allocate_arenas() {
    const std::size_t n = tree.size();
    const std::size_t total = out.row_[n];
    out.anc_.resize(total);
    out.rho_.resize(total - n);
    if (out.has_fields(kSepFieldRhoRaw)) out.rho_raw_.resize(total - n);
    if (out.has_fields(kSepFieldMax)) out.maxw_.resize(total);
    if (out.has_fields(kSepFieldMin)) out.minw_.resize(total);
    if (out.has_fields(kSepFieldSum)) out.sumw_.resize(total);
    if (out.has_fields(kSepFieldRoute)) {
      out.toward_.resize(total);
      out.branch_port_.resize(total);
    }
  }

  struct WalkItem {
    VertexId v;
    VertexId from;
    Weight mx;
    Weight mn;
    Weight sum;
    PortNumber back_port;  // v's port toward `from` (first hop to the sep)
  };

  /// Walks branch `comp` (a component of level li+1) outward from its
  /// root, folding MAX/MIN/SUM along the path from the level-li separator
  /// and writing each vertex's entry for that separator by direct index.
  void fill_branch(const Comp& comp, std::size_t li,
                   std::vector<WalkItem>& stack) {
    const std::size_t k = li - 1;  // ancestor entry index being filled
    const auto sep_level = static_cast<std::uint32_t>(li);
    const bool has_max = !out.maxw_.empty();
    const bool has_min = !out.minw_.empty();
    const bool has_sum = !out.sumw_.empty();
    const bool has_route = !out.toward_.empty();
    const bool has_raw = !out.rho_raw_.empty();
    stack.clear();
    stack.push_back({comp.start, comp.parent_sep, comp.edge_w, comp.edge_w,
                     comp.edge_w, comp.back_port});
    while (!stack.empty()) {
      const WalkItem it = stack.back();
      stack.pop_back();
      const std::size_t e = out.row_[it.v] + k;
      out.anc_[e] = comp.parent_sep;
      if (has_max) out.maxw_[e] = it.mx;
      if (has_min) out.minw_[e] = it.mn;
      if (has_sum) out.sumw_[e] = it.sum;
      if (has_route) {
        out.toward_[e] = it.back_port;
        out.branch_port_[e] = comp.bport;
      }
      const std::size_t r = out.row_[it.v] - it.v + k;
      out.rho_[r] = comp.rho;
      if (has_raw) out.rho_raw_[r] = static_cast<std::uint64_t>(comp.start) + 1;
      for (const PortInfo& p : tree.graph().ports(it.v)) {
        if (!tree.contains_edge(p.edge)) continue;
        if (p.neighbor == it.from) continue;
        // The branch is bounded by separators of level <= li (its own
        // separator plus the boundary of the enclosing component).
        if (out.level[p.neighbor] <= sep_level) continue;
        stack.push_back({p.neighbor, it.v, std::max(it.mx, p.weight),
                         std::min(it.mn, p.weight), it.sum + p.weight,
                         p.reverse_port});
      }
    }
  }

  /// Flattens a nested staging decomposition (the random path) into the
  /// arena layout.  Always materializes every field.
  static SeparatorDecomposition pack(NestedSep&& nested) {
    const std::size_t n = nested.level.size();
    SeparatorDecomposition sd;
    sd.mask_ = kSepFieldsAll;
    sd.level = std::move(nested.level);
    sd.sep_parent = std::move(nested.sep_parent);
    sd.row_.resize(n + 1);
    sd.row_[0] = 0;
    for (VertexId v = 0; v < n; ++v) {
      MSTV_ASSERT(sd.level[v] >= 1);
      MSTV_ASSERT(nested.ancestors[v].size() == sd.level[v]);
      MSTV_ASSERT(nested.ancestors[v].back() == v);
      MSTV_ASSERT(nested.rho[v].size() + 1 == sd.level[v]);
      sd.row_[v + 1] = sd.row_[v] + sd.level[v];
    }
    const std::size_t total = sd.row_[n];
    sd.anc_.resize(total);
    sd.rho_.resize(total - n);
    sd.rho_raw_.resize(total - n);
    sd.maxw_.resize(total);
    sd.minw_.resize(total);
    sd.sumw_.resize(total);
    sd.toward_.resize(total);
    sd.branch_port_.resize(total);
    for (VertexId v = 0; v < n; ++v) {
      const std::size_t e = sd.row_[v];
      std::copy(nested.ancestors[v].begin(), nested.ancestors[v].end(),
                sd.anc_.begin() + e);
      std::copy(nested.maxw[v].begin(), nested.maxw[v].end(),
                sd.maxw_.begin() + e);
      std::copy(nested.minw[v].begin(), nested.minw[v].end(),
                sd.minw_.begin() + e);
      std::copy(nested.sumw[v].begin(), nested.sumw[v].end(),
                sd.sumw_.begin() + e);
      std::copy(nested.toward[v].begin(), nested.toward[v].end(),
                sd.toward_.begin() + e);
      std::copy(nested.branch_port[v].begin(), nested.branch_port[v].end(),
                sd.branch_port_.begin() + e);
      const std::size_t r = sd.row_[v] - v;
      std::copy(nested.rho[v].begin(), nested.rho[v].end(),
                sd.rho_.begin() + r);
      std::copy(nested.rho_raw[v].begin(), nested.rho_raw[v].end(),
                sd.rho_raw_.begin() + r);
    }
    return sd;
  }
};

namespace {

/// Serial recursive decomposer for the *random* family.  Separator picks
/// and subtree numbers are drawn depth-first, one component at a time, so
/// the whole decomposition is a deterministic function of the seed alone
/// — which is why this path stays off the thread pool.
struct RandomDecomposer {
  const RootedTree& tree;
  Rng& rng;
  NestedSep out;
  std::vector<bool> removed;
  std::vector<std::uint32_t> branch_size;  // per branch root of current sep
  std::vector<std::uint64_t> rho_of;       // per branch root of current sep

  RandomDecomposer(const RootedTree& t, Rng& r)
      : tree(t), rng(r), removed(t.size(), false), branch_size(t.size(), 0),
        rho_of(t.size(), 0) {
    const std::size_t n = t.size();
    out.level.assign(n, 0);
    out.sep_parent.assign(n, kInvalidVertex);
    out.ancestors.assign(n, {});
    out.rho.assign(n, {});
    out.rho_raw.assign(n, {});
    out.maxw.assign(n, {});
    out.minw.assign(n, {});
    out.sumw.assign(n, {});
    out.toward.assign(n, {});
    out.branch_port.assign(n, {});
  }

  /// DFS order of the component containing `start`; stays within tree
  /// edges and avoids removed vertices.
  std::vector<VertexId> component_order(VertexId start) {
    std::vector<VertexId> order;
    std::vector<std::pair<VertexId, VertexId>> stack{{start, kInvalidVertex}};
    while (!stack.empty()) {
      const auto [v, par] = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const PortInfo& p : tree.graph().ports(v)) {
        if (!tree.contains_edge(p.edge) || removed[p.neighbor]) continue;
        if (p.neighbor == par) continue;
        stack.emplace_back(p.neighbor, v);
      }
    }
    return order;
  }

  void decompose(VertexId start, std::uint32_t level, VertexId sep_parent) {
    const auto order = component_order(start);
    const VertexId c = order[rng.index(order.size())];

    out.level[c] = level;
    out.sep_parent[c] = sep_parent;

    // Walk outward from c, folding MAX/MIN/SUM along the path and
    // remembering which branch (neighbor of c) each vertex hangs off,
    // which port of c enters that branch, and each vertex's first-hop
    // port back toward c (its walk predecessor, which lies on the path).
    struct Item {
      VertexId v;
      VertexId from;
      Weight mx;
      Weight mn;
      Weight sum;
      VertexId branch;       // neighbor of c this path started with
      PortNumber bport;      // c's port into this branch
      PortNumber back_port;  // v's port toward `from` (first hop to c)
    };
    std::vector<Item> st{
        {c, kInvalidVertex, 0, kWeightMax, 0, kInvalidVertex, 0, 0}};
    std::vector<std::pair<VertexId, VertexId>> vertex_branch;  // (v, branch)
    std::vector<VertexId> branch_roots;
    while (!st.empty()) {
      const Item it = st.back();
      st.pop_back();
      out.ancestors[it.v].push_back(c);
      out.maxw[it.v].push_back(it.mx);
      out.minw[it.v].push_back(it.mn);
      out.sumw[it.v].push_back(it.sum);
      out.toward[it.v].push_back(it.back_port);
      out.branch_port[it.v].push_back(it.bport);
      if (it.v != c) vertex_branch.emplace_back(it.v, it.branch);
      const auto ports = tree.graph().ports(it.v);
      for (std::size_t pi = 0; pi < ports.size(); ++pi) {
        const PortInfo& p = ports[pi];
        if (!tree.contains_edge(p.edge) || removed[p.neighbor]) continue;
        if (p.neighbor == it.from) continue;
        const bool at_c = (it.v == c);
        const VertexId branch = at_c ? p.neighbor : it.branch;
        const auto bport = at_c ? static_cast<PortNumber>(pi + 1) : it.bport;
        st.push_back({p.neighbor, it.v, std::max(it.mx, p.weight),
                      std::min(it.mn, p.weight), it.sum + p.weight, branch,
                      bport, p.reverse_port});
      }
    }

    // Arbitrary-but-unique subtree numbers, as the general family allows;
    // ranking by size still orders the recursion deterministically.
    for (const auto& [v, br] : vertex_branch) {
      if (branch_size[br] == 0) branch_roots.push_back(br);
      ++branch_size[br];
    }
    std::sort(branch_roots.begin(), branch_roots.end(),
              [&](VertexId a, VertexId b) {
                return branch_size[a] != branch_size[b]
                           ? branch_size[a] > branch_size[b]
                           : a < b;
              });
    std::vector<std::uint64_t> nums(branch_roots.size());
    for (std::size_t i = 0; i < nums.size(); ++i) {
      nums[i] = 1 + 3 * i + rng.uniform(0, 2);
    }
    rng.shuffle(nums);
    for (std::size_t i = 0; i < branch_roots.size(); ++i) {
      rho_of[branch_roots[i]] = nums[i];
    }
    for (const auto& [v, br] : vertex_branch) {
      out.rho[v].push_back(rho_of[br]);
      out.rho_raw[v].push_back(static_cast<std::uint64_t>(br) + 1);
    }
    for (const VertexId br : branch_roots) {
      branch_size[br] = 0;
      rho_of[br] = 0;
    }

    removed[c] = true;
    for (const VertexId br : branch_roots) {
      decompose(br, level + 1, c);
    }
  }
};

}  // namespace

SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree) {
  return perfect_separator_decomposition(tree, kSepFieldsAll);
}

SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree,
                                                       SepFieldMask fields) {
  SepBuilder builder(tree, fields);
  return builder.build();
}

SeparatorDecomposition random_separator_decomposition(const RootedTree& tree,
                                                      Rng& rng) {
  RandomDecomposer d(tree, rng);
  d.decompose(tree.root(), 1, kInvalidVertex);
  return SepBuilder::pack(std::move(d.out));
}

bool is_perfect_decomposition(const RootedTree& tree,
                              const SeparatorDecomposition& sd) {
  // The component of a separator c is exactly { u : c in ancestors(u) };
  // its subtrees are the groups of proper members sharing a rho value.
  const std::size_t n = tree.size();
  std::vector<std::uint32_t> comp_size(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId a : sd.ancestors(u)) ++comp_size[a];
  }
  std::vector<std::vector<std::uint32_t>> sub(n);
  for (VertexId u = 0; u < n; ++u) {
    const auto anc = sd.ancestors(u);
    const auto rho = sd.rho(u);
    for (std::size_t k = 0; k + 1 < anc.size(); ++k) {
      const VertexId a = anc[k];
      const auto r = static_cast<std::size_t>(rho[k]);
      if (r == 0) return false;
      if (sub[a].size() < r) sub[a].resize(r, 0);
      ++sub[a][r - 1];
    }
  }
  for (VertexId a = 0; a < n; ++a) {
    for (const auto s : sub[a]) {
      if (s > comp_size[a] / 2) return false;
    }
  }
  return true;
}

}  // namespace mstv
