#include "tree/centroid.hpp"

#include <algorithm>
#include <limits>

namespace mstv {
namespace {

constexpr Weight kWeightMax = std::numeric_limits<Weight>::max();

/// Working state shared across the recursion.  All per-vertex scratch
/// arrays are allocated once and reset entry-by-entry, keeping the whole
/// decomposition at O(n log n).
struct Decomposer {
  const RootedTree& tree;
  Rng* random_choice = nullptr;  // if set, pick random separators & numbers
  SeparatorDecomposition out;
  std::vector<bool> removed;             // separators already cut out
  std::vector<std::uint32_t> size;       // subtree sizes within a component
  std::vector<std::uint32_t> heaviest;   // heaviest child subtree
  std::vector<std::uint32_t> branch_size;  // per branch root of current sep
  std::vector<std::uint64_t> rho_of;       // per branch root of current sep

  explicit Decomposer(const RootedTree& t)
      : tree(t),
        removed(t.size(), false),
        size(t.size(), 0),
        heaviest(t.size(), 0),
        branch_size(t.size(), 0),
        rho_of(t.size(), 0) {
    const std::size_t n = t.size();
    out.level.assign(n, 0);
    out.sep_parent.assign(n, kInvalidVertex);
    out.ancestors.assign(n, {});
    out.rho.assign(n, {});
    out.rho_raw.assign(n, {});
    out.maxw.assign(n, {});
    out.minw.assign(n, {});
    out.sumw.assign(n, {});
    out.toward.assign(n, {});
    out.branch_port.assign(n, {});
  }

  /// DFS order of the component containing `start` with dfs-parents;
  /// stays within tree edges and avoids removed vertices.
  std::vector<std::pair<VertexId, VertexId>> component_order(VertexId start) {
    std::vector<std::pair<VertexId, VertexId>> order;
    std::vector<std::pair<VertexId, VertexId>> stack{{start, kInvalidVertex}};
    while (!stack.empty()) {
      const auto [v, par] = stack.back();
      stack.pop_back();
      order.emplace_back(v, par);
      for (const PortInfo& p : tree.graph().ports(v)) {
        if (!tree.contains_edge(p.edge) || removed[p.neighbor]) continue;
        if (p.neighbor == par) continue;
        stack.emplace_back(p.neighbor, v);
      }
    }
    return order;
  }

  /// Centroid of the component given its DFS order.
  VertexId find_centroid(const std::vector<std::pair<VertexId, VertexId>>& order) {
    const auto total = static_cast<std::uint32_t>(order.size());
    for (const auto& [v, par] : order) {
      size[v] = 1;
      heaviest[v] = 0;
      (void)par;
    }
    for (std::size_t i = order.size(); i-- > 0;) {
      const auto [v, par] = order[i];
      if (par != kInvalidVertex) {
        size[par] += size[v];
        heaviest[par] = std::max(heaviest[par], size[v]);
      }
    }
    VertexId best = order[0].first;
    std::uint32_t best_load = total;
    for (const auto& [v, par] : order) {
      (void)par;
      const std::uint32_t load = std::max(heaviest[v], total - size[v]);
      if (load < best_load) {
        best_load = load;
        best = v;
      }
    }
    for (const auto& [v, par] : order) {
      size[v] = 0;
      (void)par;
    }
    MSTV_ASSERT_MSG(best_load <= total / 2 || total == 1,
                    "centroid property violated");
    return best;
  }

  void decompose(VertexId start, std::uint32_t level, VertexId sep_parent) {
    const auto order = component_order(start);
    const VertexId c = (random_choice != nullptr)
                           ? order[random_choice->index(order.size())].first
                           : find_centroid(order);

    out.level[c] = level;
    out.sep_parent[c] = sep_parent;

    // Walk outward from c, folding MAX/MIN/SUM along the path and
    // remembering which branch (neighbor of c) each vertex hangs off,
    // which port of c enters that branch, and each vertex's first-hop
    // port back toward c (its walk predecessor, which lies on the path).
    struct Item {
      VertexId v;
      VertexId from;
      Weight mx;
      Weight mn;
      Weight sum;
      VertexId branch;        // neighbor of c this path started with
      PortNumber bport;       // c's port into this branch
      PortNumber back_port;   // v's port toward `from` (first hop to c)
    };
    std::vector<Item> st{
        {c, kInvalidVertex, 0, kWeightMax, 0, kInvalidVertex, 0, 0}};
    std::vector<std::pair<VertexId, VertexId>> vertex_branch;  // (v, branch)
    std::vector<VertexId> branch_roots;
    while (!st.empty()) {
      const Item it = st.back();
      st.pop_back();
      out.ancestors[it.v].push_back(c);
      out.maxw[it.v].push_back(it.mx);
      out.minw[it.v].push_back(it.mn);
      out.sumw[it.v].push_back(it.sum);
      out.toward[it.v].push_back(it.back_port);
      out.branch_port[it.v].push_back(it.bport);
      if (it.v != c) vertex_branch.emplace_back(it.v, it.branch);
      const auto ports = tree.graph().ports(it.v);
      for (std::size_t pi = 0; pi < ports.size(); ++pi) {
        const PortInfo& p = ports[pi];
        if (!tree.contains_edge(p.edge) || removed[p.neighbor]) continue;
        if (p.neighbor == it.from) continue;
        const bool at_c = (it.v == c);
        const VertexId branch = at_c ? p.neighbor : it.branch;
        const auto bport =
            at_c ? static_cast<PortNumber>(pi + 1) : it.bport;
        st.push_back({p.neighbor, it.v, std::max(it.mx, p.weight),
                      std::min(it.mn, p.weight), it.sum + p.weight, branch,
                      bport, p.reverse_port});
      }
    }

    // Rank branches by size (descending) and assign rho = rank, 1-based.
    // rho = rank is what lets E_sep telescope: the rank-r branch has at
    // most |comp|/r vertices, so writing gamma(r) costs O(1 + log r) =
    // O(1 + log(|comp|/|branch|)) bits, and the per-level costs sum to
    // O(log n) along any root-to-vertex path of T_sep.
    for (const auto& [v, br] : vertex_branch) {
      if (branch_size[br] == 0) branch_roots.push_back(br);
      ++branch_size[br];
    }
    std::sort(branch_roots.begin(), branch_roots.end(),
              [&](VertexId a, VertexId b) {
                return branch_size[a] != branch_size[b]
                           ? branch_size[a] > branch_size[b]
                           : a < b;
              });
    if (random_choice == nullptr) {
      for (std::size_t i = 0; i < branch_roots.size(); ++i) {
        rho_of[branch_roots[i]] = i + 1;
      }
    } else {
      // Arbitrary-but-unique numbers, as the general family allows.
      std::vector<std::uint64_t> nums(branch_roots.size());
      for (std::size_t i = 0; i < nums.size(); ++i) {
        nums[i] = 1 + 3 * i + random_choice->uniform(0, 2);
      }
      random_choice->shuffle(nums);
      for (std::size_t i = 0; i < branch_roots.size(); ++i) {
        rho_of[branch_roots[i]] = nums[i];
      }
    }
    for (const auto& [v, br] : vertex_branch) {
      out.rho[v].push_back(rho_of[br]);
      out.rho_raw[v].push_back(static_cast<std::uint64_t>(br) + 1);
    }
    for (const VertexId br : branch_roots) {
      branch_size[br] = 0;
      rho_of[br] = 0;
    }

    // Recurse into each branch.
    removed[c] = true;
    for (const VertexId br : branch_roots) {
      decompose(br, level + 1, c);
    }
  }
};

}  // namespace

std::uint32_t SeparatorDecomposition::max_level() const {
  std::uint32_t m = 0;
  for (const auto l : level) m = std::max(m, l);
  return m;
}

namespace {

SeparatorDecomposition finish_decomposition(Decomposer& d) {
  d.decompose(d.tree.root(), 1, kInvalidVertex);
  // Post-conditions the rest of the system relies on.
  for (VertexId v = 0; v < d.tree.size(); ++v) {
    MSTV_ASSERT(d.out.level[v] >= 1);
    MSTV_ASSERT(d.out.ancestors[v].size() == d.out.level[v]);
    MSTV_ASSERT(d.out.ancestors[v].back() == v);
    MSTV_ASSERT(d.out.rho[v].size() + 1 == d.out.level[v]);
    MSTV_ASSERT(d.out.rho_raw[v].size() + 1 == d.out.level[v]);
  }
  return std::move(d.out);
}

}  // namespace

SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree) {
  Decomposer d(tree);
  return finish_decomposition(d);
}

SeparatorDecomposition random_separator_decomposition(const RootedTree& tree,
                                                      Rng& rng) {
  Decomposer d(tree);
  d.random_choice = &rng;
  return finish_decomposition(d);
}

bool is_perfect_decomposition(const RootedTree& tree,
                              const SeparatorDecomposition& sd) {
  // The component of a separator c is exactly { u : c in ancestors[u] };
  // its subtrees are the groups of proper members sharing a rho value.
  const std::size_t n = tree.size();
  std::vector<std::uint32_t> comp_size(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId a : sd.ancestors[u]) ++comp_size[a];
  }
  std::vector<std::vector<std::uint32_t>> sub(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k + 1 < sd.ancestors[u].size(); ++k) {
      const VertexId a = sd.ancestors[u][k];
      const auto r = static_cast<std::size_t>(sd.rho[u][k]);
      if (r == 0) return false;
      if (sub[a].size() < r) sub[a].resize(r, 0);
      ++sub[a][r - 1];
    }
  }
  for (VertexId a = 0; a < n; ++a) {
    for (const auto s : sub[a]) {
      if (s > comp_size[a] / 2) return false;
    }
  }
  return true;
}

}  // namespace mstv
