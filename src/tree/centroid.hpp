// Perfect separator decomposition (Section 3 of the paper).
//
// "A separator decomposition is termed perfect if every separator v is
//  chosen in such a way that |T_j(v)| <= |T|/2 for every j."
//
// A centroid of a tree satisfies exactly that, so choosing centroids
// recursively yields a perfect decomposition with at most
// floor(log2 n) + 1 levels.  For every vertex we record:
//
//   * its level l(v) in the separator tree T_sep (root separator = level 1),
//   * its separator ancestors v_1 .. v_l (v_l = v itself),
//   * the subtree numbers rho appended by each ancestor separator — ranked
//     by decreasing subtree size, which is what makes the Elias-gamma
//     encoded E_sep labels telescope to O(log n) bits (the [GPPR] trick
//     cited via [14] in the paper),
//   * MAX(v, v_i) and MIN(v, v_i) *within the component decomposed by
//     v_i* — these are exactly the E_omega fields of the implicit schemes
//     (paths from v to v_i stay inside v_i's component, so restricting to
//     the component is equivalent to measuring on the whole tree).
#pragma once

#include <vector>

#include "tree/rooted_tree.hpp"
#include "util/rng.hpp"

namespace mstv {

struct SeparatorDecomposition {
  /// l(v): depth of v in T_sep, 1-based.
  std::vector<std::uint32_t> level;

  /// Parent of v in T_sep; kInvalidVertex for the level-1 separator.
  std::vector<VertexId> sep_parent;

  /// ancestors[v][i] = the level-(i+1) separator of v; last entry is v.
  std::vector<std::vector<VertexId>> ancestors;

  /// rho[v][k] = subtree number assigned to v's branch by its level-(k+1)
  /// separator, for k in [0, l(v)-2].  Size-ranked: 1 = largest subtree.
  std::vector<std::vector<std::uint64_t>> rho;

  /// rho_raw[v][k] = an alternative subtree numbering: the branch root's
  /// vertex id + 1.  Unique per sibling subtree but Theta(log n) bits to
  /// write — the numbering style of the pre-paper schemes, used by the
  /// FixedWidth baseline coding.
  std::vector<std::vector<std::uint64_t>> rho_raw;

  /// maxw[v][i] = MAX(v, ancestors[v][i]); the last entry (i = l-1) is 0.
  std::vector<std::vector<Weight>> maxw;

  /// minw[v][i] = FLOW(v, ancestors[v][i]); last entry is Weight max.
  std::vector<std::vector<Weight>> minw;

  /// sumw[v][i] = weighted distance from v to ancestors[v][i] along the
  /// tree; last entry is 0.  Fuels the implicit distance labeling scheme.
  std::vector<std::vector<Weight>> sumw;

  /// toward[v][i] = v's first-hop port toward ancestors[v][i]; 0 in the
  /// last entry (v itself).  Fuels the implicit routing scheme.
  std::vector<std::vector<PortNumber>> toward;

  /// branch_port[v][i] = the port of the level-(i+1) separator that leads
  /// into the subtree containing v; 0 in the last entry.  Lets the
  /// separator itself route toward any member of one of its subtrees.
  std::vector<std::vector<PortNumber>> branch_port;

  [[nodiscard]] std::uint32_t max_level() const;
};

/// Decomposes the tree underlying `tree`.  O(n log n).
SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree);

/// A member of the *general* family of separator decompositions: separators
/// are chosen uniformly at random (and subtree numbers are random but
/// unique), so the decomposition is usually far from perfect.  Used to
/// exercise the full family Gamma of Section 3.1 — Claim 3.1 (decoder
/// correctness) and the soundness of pi_Gamma must hold for *any* member,
/// not just gamma_small.  Depth can be Theta(n), so keep n small in tests.
SeparatorDecomposition random_separator_decomposition(const RootedTree& tree,
                                                      Rng& rng);

/// Checks the defining property: every separator's subtrees have at most
/// half the component size.  Used by tests.
bool is_perfect_decomposition(const RootedTree& tree,
                              const SeparatorDecomposition& sd);

}  // namespace mstv
