// Perfect separator decomposition (Section 3 of the paper).
//
// "A separator decomposition is termed perfect if every separator v is
//  chosen in such a way that |T_j(v)| <= |T|/2 for every j."
//
// A centroid of a tree satisfies exactly that, so choosing centroids
// recursively yields a perfect decomposition with at most
// floor(log2 n) + 1 levels.  For every vertex we record:
//
//   * its level l(v) in the separator tree T_sep (root separator = level 1),
//   * its separator ancestors v_1 .. v_l (v_l = v itself),
//   * the subtree numbers rho appended by each ancestor separator — ranked
//     by decreasing subtree size, which is what makes the Elias-gamma
//     encoded E_sep labels telescope to O(log n) bits (the [GPPR] trick
//     cited via [14] in the paper),
//   * MAX(v, v_i) and MIN(v, v_i) *within the component decomposed by
//     v_i* — these are exactly the E_omega fields of the implicit schemes
//     (paths from v to v_i stay inside v_i's component, so restricting to
//     the component is equivalent to measuring on the whole tree).
//
// Storage is a flat per-field arena rather than vector-of-vectors: vertex
// v's per-level entries live contiguously at rows [row(v), row(v) +
// l(v)), with one shared offset table for every field (rho/rho_raw have
// l(v) - 1 entries, so their row is row(v) - v).  This kills the ~9n
// small heap allocations the old nested layout paid and lets the sharded
// builder write entries by index from any worker thread.
//
// The perfect decomposition is built level-synchronously on the
// `for_each_shard` machinery (docs/parallelism.md): at each level the
// live components are sheet-listed, sharded across workers, and each
// component's centroid / branch ranking / extrema folds are computed
// independently — components at one level are vertex-disjoint, so all
// arena writes are race-free, and every stored value is a pure function
// of the component, so the result is bit-identical at any --threads=N.
#pragma once

#include <span>
#include <vector>

#include "tree/rooted_tree.hpp"
#include "util/rng.hpp"

namespace mstv {

/// Selects which per-level fields a decomposition materializes.  The
/// structural core (level, sep_parent, ancestors, rho) is always built;
/// the optional arenas cost O(n log n) words each, which matters once the
/// marker runs at n = 1e6..1e7.  Markers request only what their labels
/// serialize; callers that want everything use kSepFieldsAll (the
/// default of the two-argument builders below).
using SepFieldMask = std::uint32_t;
inline constexpr SepFieldMask kSepFieldMax = 1u << 0;     // maxw
inline constexpr SepFieldMask kSepFieldMin = 1u << 1;     // minw
inline constexpr SepFieldMask kSepFieldSum = 1u << 2;     // sumw
inline constexpr SepFieldMask kSepFieldRoute = 1u << 3;   // toward+branch_port
inline constexpr SepFieldMask kSepFieldRhoRaw = 1u << 4;  // rho_raw
inline constexpr SepFieldMask kSepFieldsAll = 0x1fu;

class SeparatorDecomposition {
 public:
  /// l(v): depth of v in T_sep, 1-based.
  std::vector<std::uint32_t> level;

  /// Parent of v in T_sep; kInvalidVertex for the level-1 separator.
  std::vector<VertexId> sep_parent;

  [[nodiscard]] std::size_t size() const noexcept { return level.size(); }

  /// Which optional field arenas were materialized.
  [[nodiscard]] SepFieldMask fields() const noexcept { return mask_; }
  [[nodiscard]] bool has_fields(SepFieldMask m) const noexcept {
    return (mask_ & m) == m;
  }

  /// ancestors(v)[i] = the level-(i+1) separator of v; last entry is v.
  [[nodiscard]] std::span<const VertexId> ancestors(VertexId v) const {
    return {anc_.data() + row(v), level[v]};
  }

  /// rho(v)[k] = subtree number assigned to v's branch by its level-(k+1)
  /// separator, for k in [0, l(v)-2].  Size-ranked: 1 = largest subtree.
  [[nodiscard]] std::span<const std::uint64_t> rho(VertexId v) const {
    return {rho_.data() + rho_row(v), level[v] - 1};
  }

  /// rho_raw(v)[k] = an alternative subtree numbering: the branch root's
  /// vertex id + 1.  Unique per sibling subtree but Theta(log n) bits to
  /// write — the numbering style of the pre-paper schemes, used by the
  /// FixedWidth baseline coding.
  [[nodiscard]] std::span<const std::uint64_t> rho_raw(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldRhoRaw));
    return {rho_raw_.data() + rho_row(v), level[v] - 1};
  }

  /// maxw(v)[i] = MAX(v, ancestors(v)[i]); the last entry (i = l-1) is 0.
  [[nodiscard]] std::span<const Weight> maxw(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldMax));
    return {maxw_.data() + row(v), level[v]};
  }
  [[nodiscard]] std::span<Weight> maxw(VertexId v) {
    MSTV_ASSERT(has_fields(kSepFieldMax));
    return {maxw_.data() + row(v), level[v]};
  }

  /// minw(v)[i] = FLOW(v, ancestors(v)[i]); last entry is Weight max.
  [[nodiscard]] std::span<const Weight> minw(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldMin));
    return {minw_.data() + row(v), level[v]};
  }
  [[nodiscard]] std::span<Weight> minw(VertexId v) {
    MSTV_ASSERT(has_fields(kSepFieldMin));
    return {minw_.data() + row(v), level[v]};
  }

  /// sumw(v)[i] = weighted distance from v to ancestors(v)[i] along the
  /// tree; last entry is 0.  Fuels the implicit distance labeling scheme.
  [[nodiscard]] std::span<const Weight> sumw(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldSum));
    return {sumw_.data() + row(v), level[v]};
  }
  [[nodiscard]] std::span<Weight> sumw(VertexId v) {
    MSTV_ASSERT(has_fields(kSepFieldSum));
    return {sumw_.data() + row(v), level[v]};
  }

  /// toward(v)[i] = v's first-hop port toward ancestors(v)[i]; 0 in the
  /// last entry (v itself).  Fuels the implicit routing scheme.
  [[nodiscard]] std::span<const PortNumber> toward(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldRoute));
    return {toward_.data() + row(v), level[v]};
  }

  /// branch_port(v)[i] = the port of the level-(i+1) separator that leads
  /// into the subtree containing v; 0 in the last entry.  Lets the
  /// separator itself route toward any member of one of its subtrees.
  [[nodiscard]] std::span<const PortNumber> branch_port(VertexId v) const {
    MSTV_ASSERT(has_fields(kSepFieldRoute));
    return {branch_port_.data() + row(v), level[v]};
  }

  [[nodiscard]] std::uint32_t max_level() const;

 private:
  /// First arena row of v for the l(v)-entry fields.
  [[nodiscard]] std::size_t row(VertexId v) const { return row_[v]; }

  /// First arena row of v for the (l(v)-1)-entry rho fields: the offset
  /// table is shared, so the rho row is just row(v) minus the v one-entry
  /// gaps accumulated before it.
  [[nodiscard]] std::size_t rho_row(VertexId v) const { return row_[v] - v; }

  SepFieldMask mask_ = kSepFieldsAll;
  std::vector<std::size_t> row_;  // size n+1; row_[n] = total entries
  std::vector<VertexId> anc_;
  std::vector<std::uint64_t> rho_;
  std::vector<std::uint64_t> rho_raw_;
  std::vector<Weight> maxw_;
  std::vector<Weight> minw_;
  std::vector<Weight> sumw_;
  std::vector<PortNumber> toward_;
  std::vector<PortNumber> branch_port_;

  friend struct SepBuilder;  // the level-synchronous builder (centroid.cpp)
};

/// Decomposes the tree underlying `tree`.  O(n log n) work, parallelized
/// across the components of each separator level on the global thread
/// pool; output is bit-identical at any thread count.
SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree);
SeparatorDecomposition perfect_separator_decomposition(const RootedTree& tree,
                                                       SepFieldMask fields);

/// A member of the *general* family of separator decompositions: separators
/// are chosen uniformly at random (and subtree numbers are random but
/// unique), so the decomposition is usually far from perfect.  Used to
/// exercise the full family Gamma of Section 3.1 — Claim 3.1 (decoder
/// correctness) and the soundness of pi_Gamma must hold for *any* member,
/// not just gamma_small.  Depth can be Theta(n), so keep n small in tests.
/// Runs serially: the random draws must form one deterministic sequence.
SeparatorDecomposition random_separator_decomposition(const RootedTree& tree,
                                                      Rng& rng);

/// Checks the defining property: every separator's subtrees have at most
/// half the component size.  Used by tests.
bool is_perfect_decomposition(const RootedTree& tree,
                              const SeparatorDecomposition& sd);

}  // namespace mstv
