// Tree-path queries: LCA, MAX(u,v) and FLOW(u,v) of Section 2.
//
//   MAX(u,v)  = maximum weight of an edge on the tree path u..v
//   FLOW(u,v) = minimum weight of an edge on the tree path u..v
//
// Implemented with binary lifting (O(n log n) preprocessing, O(log n) per
// query).  These are the *centralized* reference oracles: the implicit
// labeling schemes of labeling/ answer the same queries from two labels
// alone, and tests cross-check them against this structure; is_mst uses
// MAX to apply the cycle rule.
#pragma once

#include <vector>

#include "tree/rooted_tree.hpp"

namespace mstv {

class TreePathQueries {
 public:
  explicit TreePathQueries(const RootedTree& tree);

  [[nodiscard]] VertexId lca(VertexId u, VertexId v) const;

  /// Maximum edge weight on the tree path u..v; 0 when u == v.
  [[nodiscard]] Weight path_max(VertexId u, VertexId v) const;

  /// Minimum edge weight on the tree path u..v (the paper's FLOW);
  /// returns the max Weight value when u == v (empty path).
  [[nodiscard]] Weight path_min(VertexId u, VertexId v) const;

  /// Number of edges on the tree path u..v.
  [[nodiscard]] std::uint32_t path_length(VertexId u, VertexId v) const;

 private:
  /// Folds (max, min) over the edges from u up to its ancestor `anc`.
  void fold_up(VertexId u, VertexId anc, Weight& mx, Weight& mn) const;

  const RootedTree* tree_;
  int levels_;
  // up_[k][v]: 2^k-th ancestor; max_/min_ fold edge weights along the jump.
  std::vector<std::vector<VertexId>> up_;
  std::vector<std::vector<Weight>> max_;
  std::vector<std::vector<Weight>> min_;
};

/// Reference implementations that walk the path; O(n) per query.
Weight brute_path_max(const RootedTree& tree, VertexId u, VertexId v);
Weight brute_path_min(const RootedTree& tree, VertexId u, VertexId v);

}  // namespace mstv
