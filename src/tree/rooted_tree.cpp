#include "tree/rooted_tree.hpp"

#include <algorithm>

namespace mstv {

RootedTree::RootedTree(const Graph& g, const std::vector<EdgeId>& tree_edges,
                       VertexId root)
    : g_(&g), root_(root) {
  MSTV_EXPECTS(root < g.num_vertices());
  MSTV_EXPECTS_MSG(tree_edges.size() + 1 == g.num_vertices(),
                   "a spanning tree has exactly n-1 edges");
  build(tree_edges);
}

RootedTree::RootedTree(const Graph& g, VertexId root) : g_(&g), root_(root) {
  MSTV_EXPECTS(root < g.num_vertices());
  MSTV_EXPECTS_MSG(g.num_edges() + 1 == g.num_vertices(),
                   "graph is not a tree");
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  build(all);
}

void RootedTree::build(const std::vector<EdgeId>& tree_edges) {
  const Graph& g = *g_;
  const std::size_t n = g.num_vertices();
  tree_edges_ = tree_edges;
  in_tree_.assign(g.num_edges(), false);
  for (const EdgeId e : tree_edges) {
    MSTV_EXPECTS(e < g.num_edges());
    MSTV_EXPECTS_MSG(!in_tree_[e], "duplicate tree edge");
    in_tree_[e] = true;
  }

  parent_.assign(n, kInvalidVertex);
  parent_port_.assign(n, 0);
  parent_weight_.assign(n, 0);
  parent_edge_.assign(n, kInvalidEdge);
  depth_.assign(n, 0);
  children_.assign(n, {});
  preorder_.clear();
  preorder_.reserve(n);
  pre_rank_.assign(n, 0);
  subtree_size_.assign(n, 1);

  // Iterative DFS over tree edges only.
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack{root_};
  visited[root_] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    pre_rank_[v] = static_cast<std::uint32_t>(preorder_.size());
    preorder_.push_back(v);
    // Push children in reverse port order so preorder follows port order.
    const auto ps = g.ports(v);
    for (std::size_t i = ps.size(); i-- > 0;) {
      const PortInfo& p = ps[i];
      if (!in_tree_[p.edge] || visited[p.neighbor]) continue;
      visited[p.neighbor] = true;
      parent_[p.neighbor] = v;
      parent_port_[p.neighbor] = p.reverse_port;
      parent_weight_[p.neighbor] = p.weight;
      parent_edge_[p.neighbor] = p.edge;
      depth_[p.neighbor] = depth_[v] + 1;
      stack.push_back(p.neighbor);
    }
  }
  MSTV_EXPECTS_MSG(preorder_.size() == n,
                   "tree edges do not span the graph");

  for (VertexId v = 0; v < n; ++v) {
    if (v != root_) children_[parent_[v]].push_back(v);
  }
  // Subtree sizes bottom-up over reverse preorder.
  for (std::size_t i = n; i-- > 0;) {
    const VertexId v = preorder_[i];
    if (v != root_) subtree_size_[parent_[v]] += subtree_size_[v];
  }
}

}  // namespace mstv
