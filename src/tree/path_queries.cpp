#include "tree/path_queries.hpp"

#include <algorithm>
#include <limits>

namespace mstv {

namespace {
constexpr Weight kWeightMax = std::numeric_limits<Weight>::max();
}

TreePathQueries::TreePathQueries(const RootedTree& tree) : tree_(&tree) {
  const std::size_t n = tree.size();
  levels_ = 1;
  while ((std::size_t{1} << levels_) < n) ++levels_;

  up_.assign(static_cast<std::size_t>(levels_), std::vector<VertexId>(n));
  max_.assign(static_cast<std::size_t>(levels_), std::vector<Weight>(n, 0));
  min_.assign(static_cast<std::size_t>(levels_),
              std::vector<Weight>(n, kWeightMax));

  for (VertexId v = 0; v < n; ++v) {
    if (tree.is_root(v)) {
      up_[0][v] = v;  // self-loop at the root keeps jumps total
      max_[0][v] = 0;
      min_[0][v] = kWeightMax;
    } else {
      up_[0][v] = tree.parent(v);
      max_[0][v] = tree.parent_weight(v);
      min_[0][v] = tree.parent_weight(v);
    }
  }
  for (std::size_t k = 1; k < static_cast<std::size_t>(levels_); ++k) {
    for (VertexId v = 0; v < n; ++v) {
      const VertexId mid = up_[k - 1][v];
      up_[k][v] = up_[k - 1][mid];
      max_[k][v] = std::max(max_[k - 1][v], max_[k - 1][mid]);
      min_[k][v] = std::min(min_[k - 1][v], min_[k - 1][mid]);
    }
  }
}

VertexId TreePathQueries::lca(VertexId u, VertexId v) const {
  const RootedTree& t = *tree_;
  MSTV_EXPECTS(u < t.size() && v < t.size());
  if (t.depth(u) < t.depth(v)) std::swap(u, v);
  std::uint32_t diff = t.depth(u) - t.depth(v);
  for (int k = 0; k < levels_; ++k) {
    if ((diff >> k) & 1u) u = up_[static_cast<std::size_t>(k)][u];
  }
  if (u == v) return u;
  for (int k = levels_ - 1; k >= 0; --k) {
    const auto ku = static_cast<std::size_t>(k);
    if (up_[ku][u] != up_[ku][v]) {
      u = up_[ku][u];
      v = up_[ku][v];
    }
  }
  return tree_->parent(u);
}

void TreePathQueries::fold_up(VertexId u, VertexId anc, Weight& mx,
                              Weight& mn) const {
  std::uint32_t diff = tree_->depth(u) - tree_->depth(anc);
  for (int k = 0; k < levels_; ++k) {
    if ((diff >> k) & 1u) {
      const auto ku = static_cast<std::size_t>(k);
      mx = std::max(mx, max_[ku][u]);
      mn = std::min(mn, min_[ku][u]);
      u = up_[ku][u];
    }
  }
  MSTV_ASSERT(u == anc);
}

Weight TreePathQueries::path_max(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  Weight mx = 0, mn = kWeightMax;
  fold_up(u, a, mx, mn);
  fold_up(v, a, mx, mn);
  return mx;
}

Weight TreePathQueries::path_min(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  Weight mx = 0, mn = kWeightMax;
  fold_up(u, a, mx, mn);
  fold_up(v, a, mx, mn);
  return mn;
}

std::uint32_t TreePathQueries::path_length(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  return tree_->depth(u) + tree_->depth(v) - 2 * tree_->depth(a);
}

Weight brute_path_max(const RootedTree& tree, VertexId u, VertexId v) {
  Weight mx = 0;
  while (u != v) {
    if (tree.depth(u) < tree.depth(v)) std::swap(u, v);
    mx = std::max(mx, tree.parent_weight(u));
    u = tree.parent(u);
  }
  return mx;
}

Weight brute_path_min(const RootedTree& tree, VertexId u, VertexId v) {
  Weight mn = kWeightMax;
  while (u != v) {
    if (tree.depth(u) < tree.depth(v)) std::swap(u, v);
    mn = std::min(mn, tree.parent_weight(u));
    u = tree.parent(u);
  }
  return mn;
}

}  // namespace mstv
