// Rooted-tree view over a spanning tree of a Graph.
//
// Centralises everything downstream modules need about the tree: parents
// (with the port leading to them — the paper's state field of Definition
// 2.1), depths, children, DFS orders and subtree sizes.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mstv {

class RootedTree {
 public:
  /// Roots the subgraph formed by `tree_edges` of `g` at `root`.
  /// Requires: `tree_edges` has exactly n-1 edges and spans `g`.
  RootedTree(const Graph& g, const std::vector<EdgeId>& tree_edges,
             VertexId root);

  /// Convenience: `g` itself is a tree (m == n-1, connected).
  RootedTree(const Graph& g, VertexId root);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] VertexId root() const noexcept { return root_; }
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  [[nodiscard]] bool is_root(VertexId v) const { return v == root_; }

  /// Parent of v; kInvalidVertex at the root.
  [[nodiscard]] VertexId parent(VertexId v) const { return parent_.at(v); }

  /// Port of v leading to its parent; 0 at the root.
  [[nodiscard]] PortNumber parent_port(VertexId v) const {
    return parent_port_.at(v);
  }

  /// Weight of the edge (v, parent(v)); undefined at the root.
  [[nodiscard]] Weight parent_weight(VertexId v) const {
    MSTV_EXPECTS(!is_root(v));
    return parent_weight_[v];
  }

  /// Id of the edge (v, parent(v)); kInvalidEdge at the root.
  [[nodiscard]] EdgeId parent_edge(VertexId v) const {
    return parent_edge_.at(v);
  }

  [[nodiscard]] std::uint32_t depth(VertexId v) const { return depth_.at(v); }

  [[nodiscard]] const std::vector<VertexId>& children(VertexId v) const {
    return children_.at(v);
  }

  /// Vertices in DFS preorder from the root.
  [[nodiscard]] const std::vector<VertexId>& preorder() const noexcept {
    return preorder_;
  }

  /// Position of v in preorder (0-based).  The paper's step 4 of the
  /// hypertree construction assigns identities by preorder; id = rank + 1.
  [[nodiscard]] std::uint32_t preorder_rank(VertexId v) const {
    return pre_rank_.at(v);
  }

  [[nodiscard]] std::uint32_t subtree_size(VertexId v) const {
    return subtree_size_.at(v);
  }

  /// True if `anc` is an ancestor of v (inclusive).
  [[nodiscard]] bool is_ancestor(VertexId anc, VertexId v) const {
    return pre_rank_[anc] <= pre_rank_[v] &&
           pre_rank_[v] < pre_rank_[anc] + subtree_size_[anc];
  }

  /// True if edge `e` of the underlying graph belongs to the tree.
  [[nodiscard]] bool contains_edge(EdgeId e) const { return in_tree_.at(e); }

  /// The tree-edge ids (n-1 of them).
  [[nodiscard]] const std::vector<EdgeId>& tree_edges() const noexcept {
    return tree_edges_;
  }

 private:
  void build(const std::vector<EdgeId>& tree_edges);

  const Graph* g_;
  VertexId root_;
  std::vector<EdgeId> tree_edges_;
  std::vector<bool> in_tree_;  // by EdgeId
  std::vector<VertexId> parent_;
  std::vector<PortNumber> parent_port_;
  std::vector<Weight> parent_weight_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<VertexId> preorder_;
  std::vector<std::uint32_t> pre_rank_;
  std::vector<std::uint32_t> subtree_size_;
};

}  // namespace mstv
