#include "labeling/extrema_labeling.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "parallel/parallel_for.hpp"

namespace mstv {

Weight extrema_identity(ExtremaKind kind) {
  return kind == ExtremaKind::Max ? Weight{0}
                                  : std::numeric_limits<Weight>::max();
}

std::vector<ExtremaLabel> ExtremaLabelingScheme::encode(
    const RootedTree& tree, const SeparatorDecomposition& sd) const {
  const std::size_t n = tree.size();
  std::vector<ExtremaLabel> labels(n);
  // Per-vertex rows of the decomposition arenas are independent, so the
  // materialization shards over the vertex range.
  parallel::for_each_shard(n, [&](const parallel::ShardRange& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const auto v = static_cast<VertexId>(i);
      ExtremaLabel& l = labels[v];
      // The telescoping coding needs the size-ranked numbers; the naive
      // baseline uses the raw vertex-id-based numbers of earlier schemes.
      const auto rho =
          (coding_ == SepCoding::Telescoping) ? sd.rho(v) : sd.rho_raw(v);
      l.rho.assign(rho.begin(), rho.end());
      const auto src = (kind_ == ExtremaKind::Max) ? sd.maxw(v) : sd.minw(v);
      MSTV_ASSERT(src.size() == sd.level[v]);
      // Drop the trivial last field (the extremum of the empty path v..v).
      l.extrema.assign(src.begin(), src.end() - 1);
      MSTV_ASSERT(l.extrema.size() == l.rho.size());
    }
  });
  return labels;
}

std::vector<ExtremaLabel> ExtremaLabelingScheme::encode(
    const RootedTree& tree) const {
  return encode(tree, perfect_separator_decomposition(tree));
}

Weight ExtremaLabelingScheme::decode(const ExtremaLabel& lu,
                                     const ExtremaLabel& lv) const {
  // Sep_level(u, v): field 1 (the constant) always matches; then the
  // longest common prefix of the rho sequences.
  const std::size_t cap = std::min(lu.rho.size(), lv.rho.size());
  std::size_t lcp = 0;
  while (lcp < cap && lu.rho[lcp] == lv.rho[lcp]) ++lcp;
  const std::size_t i = lcp + 1;  // 1-based Sep_level

  // E_omega_i: stored fields cover 1..l-1; field l (own level) is the
  // identity element by construction.
  auto field = [&](const ExtremaLabel& l) {
    return (i <= l.extrema.size()) ? l.extrema[i - 1]
                                   : extrema_identity(kind_);
  };
  const Weight a = field(lu), b = field(lv);
  return kind_ == ExtremaKind::Max ? std::max(a, b) : std::min(a, b);
}

Label ExtremaLabelingScheme::to_bits(const ExtremaLabel& l) const {
  BitWriter w;
  write_to(w, l);
  return Label(std::move(w));
}

ExtremaLabel ExtremaLabelingScheme::from_bits(const Label& bits) const {
  BitReader r = bits.reader();
  ExtremaLabel l = read_from(r);
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  return l;
}

void ExtremaLabelingScheme::write_to(BitWriter& w,
                                     const ExtremaLabel& l) const {
  write_fields(w, l.rho, l.extrema);
}

void ExtremaLabelingScheme::write_direct(BitWriter& w,
                                         const SeparatorDecomposition& sd,
                                         VertexId v) const {
  const auto rho =
      (coding_ == SepCoding::Telescoping) ? sd.rho(v) : sd.rho_raw(v);
  const auto src = (kind_ == ExtremaKind::Max) ? sd.maxw(v) : sd.minw(v);
  // Drop the trivial last field, exactly as encode() does.
  write_fields(w, rho, src.first(src.size() - 1));
}

void ExtremaLabelingScheme::write_fields(
    BitWriter& w, std::span<const std::uint64_t> rho,
    std::span<const Weight> extrema) const {
  MSTV_ASSERT(extrema.size() == rho.size());
  const auto nfields = static_cast<std::uint64_t>(rho.size());
  w.write_gamma0(nfields);

  // E_sep: either self-delimiting gamma codes (telescoping sizes) or a
  // declared fixed width (the naive Theta(log n)-per-field coding).
  if (coding_ == SepCoding::Telescoping) {
    for (const auto r : rho) w.write_gamma(r);
  } else {
    std::uint64_t mx = 1;
    for (const auto r : rho) mx = std::max(mx, r);
    const int rbits = bit_width_u64(mx);
    w.write_gamma0(static_cast<std::uint64_t>(rbits));
    for (const auto r : rho) w.write_uint(r, rbits);
  }

  // E_omega: one declared width, then fixed-width fields.
  std::uint64_t wmax = 0;
  for (const auto x : extrema) wmax = std::max(wmax, x);
  const int wbits = bit_width_u64(wmax);
  w.write_gamma0(static_cast<std::uint64_t>(wbits));
  for (const auto x : extrema) w.write_uint(x, wbits);
}

ExtremaLabel ExtremaLabelingScheme::read_from(BitReader& r) const {
  ExtremaLabel l;
  const std::uint64_t nfields = r.read_gamma0();
  MSTV_EXPECTS_MSG(nfields <= r.remaining() + 64,
                   "corrupt label: absurd field count");
  l.rho.resize(nfields);
  if (coding_ == SepCoding::Telescoping) {
    for (auto& x : l.rho) x = r.read_gamma();
  } else {
    const auto rbits = static_cast<int>(r.read_gamma0());
    MSTV_EXPECTS_MSG(rbits <= 64, "corrupt label: rho width");
    for (auto& x : l.rho) x = r.read_uint(rbits);
  }
  const auto wbits = static_cast<int>(r.read_gamma0());
  MSTV_EXPECTS_MSG(wbits <= 64, "corrupt label: weight width");
  l.extrema.resize(nfields);
  for (auto& x : l.extrema) x = r.read_uint(wbits);
  return l;
}

}  // namespace mstv
