// Further implicit labeling schemes from the same separator machinery.
//
// The paper remarks (end of Section 3) that "similar techniques can be
// used to provide compact proof labeling schemes for various implicit
// labeling schemes on trees, such as routing, distance etc."  These are
// the implicit halves of that remark, built on the identical
// perfect-separator skeleton as gamma_small:
//
//   * DistanceLabelingScheme — exact weighted tree distances.  The common
//     level-i separator x lies ON the tree path between u and v, so
//     dist(u, v) = dist(u, x) + dist(x, v): store one distance per level,
//     O(log n log(nW)) bits, O(1)-field decode.
//
//   * RoutingLabelingScheme — next-hop routing.  Each vertex stores, per
//     level, its first-hop port toward that separator, plus the
//     separator's own port into the vertex's subtree (the classic
//     "subtree number = port" trick).  Given two labels, the decoder
//     emits the first port on the path — O(log n log deg) bits.
#pragma once

#include <vector>

#include "labeling/label.hpp"
#include "tree/centroid.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

struct DistanceLabel {
  std::vector<std::uint64_t> rho;  // E_sep fields 2..l (telescoping)
  std::vector<Weight> dist;        // dist(v, v_i), i = 1..l-1 (last is 0)

  friend bool operator==(const DistanceLabel&, const DistanceLabel&) =
      default;
};

class DistanceLabelingScheme {
 public:
  [[nodiscard]] std::vector<DistanceLabel> encode(
      const RootedTree& tree, const SeparatorDecomposition& sd) const;
  [[nodiscard]] std::vector<DistanceLabel> encode(const RootedTree& tree) const;

  /// Exact weighted distance between the two labelled vertices.
  [[nodiscard]] Weight decode(const DistanceLabel& lu,
                              const DistanceLabel& lv) const;

  [[nodiscard]] Label to_bits(const DistanceLabel& l) const;
  [[nodiscard]] DistanceLabel from_bits(const Label& bits) const;
  [[nodiscard]] std::size_t label_bits(const DistanceLabel& l) const {
    return to_bits(l).size_bits();
  }
};

struct RoutingLabel {
  std::vector<std::uint64_t> rho;        // E_sep fields 2..l
  std::vector<PortNumber> toward;        // first hop toward v_i, i=1..l-1
  std::vector<PortNumber> branch_port;   // v_i's port into v's subtree

  friend bool operator==(const RoutingLabel&, const RoutingLabel&) = default;
};

class RoutingLabelingScheme {
 public:
  [[nodiscard]] std::vector<RoutingLabel> encode(
      const RootedTree& tree, const SeparatorDecomposition& sd) const;
  [[nodiscard]] std::vector<RoutingLabel> encode(const RootedTree& tree) const;

  /// The port of u's first hop on the tree path toward v.
  /// Requires u != v (identical labels are rejected).
  [[nodiscard]] PortNumber decode_route(const RoutingLabel& lu,
                                        const RoutingLabel& lv) const;

  [[nodiscard]] Label to_bits(const RoutingLabel& l) const;
  [[nodiscard]] RoutingLabel from_bits(const Label& bits) const;
  [[nodiscard]] std::size_t label_bits(const RoutingLabel& l) const {
    return to_bits(l).size_bits();
  }
};

}  // namespace mstv
