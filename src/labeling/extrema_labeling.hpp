// Implicit labeling schemes for MAX(u,v) and FLOW(u,v) on T(n, W)
// (Section 3.1 of the paper).
//
// A scheme gamma = <E, D> in the family Gamma is determined by a separator
// decomposition of the tree (and the subtree numbers rho).  The label of a
// level-l separator v is
//
//     E(v) = ( E_sep(v), E_omega(v) )
//     E_sep(v)   = (const, rho_1, ..., rho_{l-1})       -- "which subtree"
//     E_omega(v) = (MAX(v, v_1), ..., MAX(v, v_l))      -- v_i = level-i sep
//
// and the decoder, given E(u) and E(w), finds the largest i with equal
// E_sep prefixes (the Sep_level property) and returns
// max{E_omega_i(u), E_omega_i(w)} — Claim 3.1.  The decoder is the *same*
// for every member of the family; only the encoder differs.
//
// gamma_small (Lemma 3.2) = perfect decomposition + size-ranked rho encoded
// with Elias gamma, giving O(log n) bits of E_sep and O(log n) weight
// fields, i.e. O(log n log W) in total.  The FixedWidth coding writes each
// rho with ceil(log2 n) bits, reproducing the Theta(log^2 n + log n log W)
// shape of the previously-known schemes ([KKP05]/[KKKP04]) as the baseline
// for experiments E2/E4.
//
// The Min instantiation is the FLOW scheme the paper notes as an improved
// byproduct (remark after Lemma 3.2).
#pragma once

#include <span>
#include <vector>

#include "labeling/label.hpp"
#include "tree/centroid.hpp"
#include "tree/rooted_tree.hpp"

namespace mstv {

enum class ExtremaKind { Max, Min };
enum class SepCoding { Telescoping, FixedWidth };

/// Decoded structured form of E(v).  The constant first field of E_sep and
/// the trivial last field of E_omega (MAX(v,v), an identity element) are
/// implicit and not stored or transmitted.
struct ExtremaLabel {
  std::vector<std::uint64_t> rho;  // E_sep fields 2..l
  std::vector<Weight> extrema;     // E_omega fields 1..l-1

  /// Separator level l of the labelled vertex.
  [[nodiscard]] std::uint32_t level() const {
    return static_cast<std::uint32_t>(rho.size()) + 1;
  }

  friend bool operator==(const ExtremaLabel&, const ExtremaLabel&) = default;
};

class ExtremaLabelingScheme {
 public:
  ExtremaLabelingScheme(ExtremaKind kind, SepCoding coding)
      : kind_(kind), coding_(coding) {}

  [[nodiscard]] ExtremaKind kind() const noexcept { return kind_; }
  [[nodiscard]] SepCoding coding() const noexcept { return coding_; }

  /// Encoder over an explicit decomposition (any member of Gamma).
  [[nodiscard]] std::vector<ExtremaLabel> encode(
      const RootedTree& tree, const SeparatorDecomposition& sd) const;

  /// Encoder using the perfect decomposition (gamma_small / its naive twin).
  [[nodiscard]] std::vector<ExtremaLabel> encode(const RootedTree& tree) const;

  /// Decoder (identical for every scheme in the family, Claim 3.1):
  /// MAX(u,v) resp. FLOW(u,v) from the two labels alone.
  [[nodiscard]] Weight decode(const ExtremaLabel& lu,
                              const ExtremaLabel& lv) const;

  /// Bit serialization.  `to_bits` is what a node would store/transmit;
  /// `from_bits` must parse anything `to_bits` produces (round-trip) and
  /// reject garbage by throwing.  The stream-level write_to/read_from are
  /// used when the label is embedded as a sublabel of a larger proof label
  /// (pi_Gamma / pi_mst).
  [[nodiscard]] Label to_bits(const ExtremaLabel& l) const;
  [[nodiscard]] ExtremaLabel from_bits(const Label& bits) const;
  void write_to(BitWriter& w, const ExtremaLabel& l) const;
  [[nodiscard]] ExtremaLabel read_from(BitReader& r) const;

  /// Serializes vertex v's label straight from the decomposition arenas —
  /// the same bytes write_to produces for encode()'s ExtremaLabel, without
  /// materializing the per-vertex rho/extrema vectors.  The marker hot
  /// path uses this from inside its label-assembly shards.
  void write_direct(BitWriter& w, const SeparatorDecomposition& sd,
                    VertexId v) const;

  [[nodiscard]] std::size_t label_bits(const ExtremaLabel& l) const {
    return to_bits(l).size_bits();
  }

 private:
  void write_fields(BitWriter& w, std::span<const std::uint64_t> rho,
                    std::span<const Weight> extrema) const;

  ExtremaKind kind_;
  SepCoding coding_;
};

/// The identity element of the fold: 0 for Max, +infinity for Min.
Weight extrema_identity(ExtremaKind kind);

}  // namespace mstv
