// Wire/disk format for label sets.
//
// The model's lifecycle is "mark once (centralized), verify forever
// (local)": an operator computes labels after (re)building the MST and
// ships one label to each node.  This module fixes a portable format so
// labels can be stored and shipped:
//
//   magic "MSTV"  u64 count  { u64 nbits  nbits bits (LSB-first words) }*
//
// Sizes remain bit-exact; the loader validates framing and rejects
// truncated or oversized input.
#pragma once

#include <iosfwd>
#include <vector>

#include "labeling/label.hpp"

namespace mstv {

void write_labels(std::ostream& os, const std::vector<Label>& labels);

/// Throws PreconditionError on malformed input.
std::vector<Label> read_labels(std::istream& is);

}  // namespace mstv
