#include "labeling/wire.hpp"

#include <array>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace mstv {
namespace {

constexpr std::array<char, 4> kMagic{'M', 'S', 'T', 'V'};
constexpr std::uint64_t kMaxLabels = 1u << 28;
constexpr std::uint64_t kMaxLabelBits = 1u << 30;

void put_u64(std::ostream& os, std::uint64_t v) {
  std::array<char, 8> buf;
  for (int i = 0; i < 8; ++i) buf[static_cast<std::size_t>(i)] =
      static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf.data(), 8);
}

std::uint64_t get_u64(std::istream& is) {
  std::array<char, 8> buf;
  is.read(buf.data(), 8);
  MSTV_EXPECTS_MSG(static_cast<bool>(is), "truncated label file");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(buf[static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

void write_labels(std::ostream& os, const std::vector<Label>& labels) {
  os.write(kMagic.data(), kMagic.size());
  put_u64(os, labels.size());
  for (const Label& l : labels) {
    put_u64(os, l.size_bits());
    for (const std::uint64_t w : l.words()) put_u64(os, w);
  }
}

std::vector<Label> read_labels(std::istream& is) {
  std::array<char, 4> magic;
  is.read(magic.data(), magic.size());
  MSTV_EXPECTS_MSG(static_cast<bool>(is) && magic == kMagic,
                   "not a label file (bad magic)");
  const std::uint64_t count = get_u64(is);
  MSTV_EXPECTS_MSG(count <= kMaxLabels, "absurd label count");
  std::vector<Label> labels;
  labels.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t nbits = get_u64(is);
    MSTV_EXPECTS_MSG(nbits <= kMaxLabelBits, "absurd label size");
    const std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> words(nwords);
    for (auto& w : words) w = get_u64(is);
    labels.emplace_back(std::move(words), nbits);
  }
  return labels;
}

}  // namespace mstv
