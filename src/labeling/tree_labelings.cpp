#include "labeling/tree_labelings.hpp"

#include <algorithm>
#include <utility>

namespace mstv {
namespace {

/// Longest common prefix of the rho sequences + 1 = Sep_level.
std::size_t sep_level(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
  const std::size_t cap = std::min(a.size(), b.size());
  std::size_t lcp = 0;
  while (lcp < cap && a[lcp] == b[lcp]) ++lcp;
  return lcp + 1;
}

}  // namespace

std::vector<DistanceLabel> DistanceLabelingScheme::encode(
    const RootedTree& tree, const SeparatorDecomposition& sd) const {
  std::vector<DistanceLabel> out(tree.size());
  for (VertexId v = 0; v < tree.size(); ++v) {
    const auto rho = sd.rho(v);
    const auto sum = sd.sumw(v);
    out[v].rho.assign(rho.begin(), rho.end());
    out[v].dist.assign(sum.begin(), sum.end() - 1);
  }
  return out;
}

std::vector<DistanceLabel> DistanceLabelingScheme::encode(
    const RootedTree& tree) const {
  return encode(tree, perfect_separator_decomposition(tree));
}

Weight DistanceLabelingScheme::decode(const DistanceLabel& lu,
                                      const DistanceLabel& lv) const {
  const std::size_t i = sep_level(lu.rho, lv.rho);
  auto field = [&](const DistanceLabel& l) {
    return i <= l.dist.size() ? l.dist[i - 1] : Weight{0};  // own level: 0
  };
  // The level-i separator lies on the u..v path, so distances add.
  return field(lu) + field(lv);
}

Label DistanceLabelingScheme::to_bits(const DistanceLabel& l) const {
  BitWriter w;
  w.write_gamma0(l.rho.size());
  for (const auto r : l.rho) w.write_gamma(r);
  std::uint64_t mx = 0;
  for (const auto d : l.dist) mx = std::max(mx, d);
  const int dbits = bit_width_u64(mx);
  w.write_gamma0(static_cast<std::uint64_t>(dbits));
  for (const auto d : l.dist) w.write_uint(d, dbits);
  return Label(std::move(w));
}

DistanceLabel DistanceLabelingScheme::from_bits(const Label& bits) const {
  BitReader r = bits.reader();
  DistanceLabel l;
  const std::uint64_t nfields = r.read_gamma0();
  MSTV_EXPECTS_MSG(nfields <= r.remaining() + 64,
                   "corrupt label: absurd field count");
  l.rho.resize(nfields);
  for (auto& x : l.rho) x = r.read_gamma();
  const auto dbits = static_cast<int>(r.read_gamma0());
  MSTV_EXPECTS_MSG(dbits <= 64, "corrupt label: distance width");
  l.dist.resize(nfields);
  for (auto& x : l.dist) x = r.read_uint(dbits);
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  return l;
}

std::vector<RoutingLabel> RoutingLabelingScheme::encode(
    const RootedTree& tree, const SeparatorDecomposition& sd) const {
  std::vector<RoutingLabel> out(tree.size());
  for (VertexId v = 0; v < tree.size(); ++v) {
    const auto rho = sd.rho(v);
    const auto toward = sd.toward(v);
    const auto bport = sd.branch_port(v);
    out[v].rho.assign(rho.begin(), rho.end());
    out[v].toward.assign(toward.begin(), toward.end() - 1);
    out[v].branch_port.assign(bport.begin(), bport.end() - 1);
  }
  return out;
}

std::vector<RoutingLabel> RoutingLabelingScheme::encode(
    const RootedTree& tree) const {
  return encode(tree, perfect_separator_decomposition(tree));
}

PortNumber RoutingLabelingScheme::decode_route(const RoutingLabel& lu,
                                               const RoutingLabel& lv) const {
  MSTV_EXPECTS_MSG(!(lu == lv), "routing to self is undefined");
  const std::size_t i = sep_level(lu.rho, lv.rho);
  if (i <= lu.toward.size()) {
    // The common separator is a different vertex: head toward it — it is
    // on the path to v.
    return lu.toward[i - 1];
  }
  // u IS the common separator; v lies in one of u's subtrees, and v's
  // label carries u's port into that subtree.
  MSTV_ASSERT(i <= lv.branch_port.size());
  return lv.branch_port[i - 1];
}

Label RoutingLabelingScheme::to_bits(const RoutingLabel& l) const {
  BitWriter w;
  w.write_gamma0(l.rho.size());
  for (const auto r : l.rho) w.write_gamma(r);
  for (const auto p : l.toward) w.write_gamma(p);
  for (const auto p : l.branch_port) w.write_gamma(p);
  return Label(std::move(w));
}

RoutingLabel RoutingLabelingScheme::from_bits(const Label& bits) const {
  BitReader r = bits.reader();
  RoutingLabel l;
  const std::uint64_t nfields = r.read_gamma0();
  MSTV_EXPECTS_MSG(nfields <= r.remaining() + 64,
                   "corrupt label: absurd field count");
  l.rho.resize(nfields);
  for (auto& x : l.rho) x = r.read_gamma();
  l.toward.resize(nfields);
  for (auto& x : l.toward) x = static_cast<PortNumber>(r.read_gamma());
  l.branch_port.resize(nfields);
  for (auto& x : l.branch_port) x = static_cast<PortNumber>(r.read_gamma());
  MSTV_EXPECTS_MSG(r.exhausted(), "corrupt label: trailing bits");
  return l;
}

}  // namespace mstv
