#include "labeling/label.hpp"

#include <utility>

namespace mstv {

void Label::normalize() {
  const std::size_t need = (nbits_ + 63) / 64;
  words_.resize(need);
  if (nbits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (nbits_ % 64)) - 1;
  }
}

Label Label::with_bit_flipped(std::size_t i) const {
  MSTV_EXPECTS(i < nbits_);
  Label out = *this;
  out.words_[i >> 6] ^= (std::uint64_t{1} << (i & 63));
  return out;
}

Label Label::truncated(std::size_t nbits) const {
  if (nbits >= nbits_) return *this;
  Label out = *this;
  out.nbits_ = nbits;
  out.normalize();
  return out;
}

Label Label::operator+(const Label& rhs) const {
  BitWriter w;
  auto copy = [&w](const Label& l) {
    BitReader r = l.reader();
    // Copy in 64-bit chunks for speed; remainder bit by bit.
    std::size_t left = l.size_bits();
    while (left >= 64) {
      w.write_uint(r.read_uint(64), 64);
      left -= 64;
    }
    while (left-- > 0) w.write_bit(r.read_bit());
  };
  copy(*this);
  copy(rhs);
  return Label(std::move(w));
}

std::string Label::to_string() const {
  std::string s;
  s.reserve(nbits_);
  BitReader r = reader();
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(r.read_bit() ? '1' : '0');
  return s;
}

}  // namespace mstv
