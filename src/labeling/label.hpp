// Label: an immutable bit string.
//
// Labels are the currency of both kinds of schemes in the paper — the
// implicit labeling schemes (encoder/decoder) and the proof labeling
// schemes (marker/verifier).  All size results are in bits, so Label is
// backed by an exact bit buffer and reports size_bits().  Verifiers and
// decoders parse labels through BitReader, never through struct aliasing,
// which is what lets the adversarial tests hand them arbitrary forged
// bit strings.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bitstream.hpp"

namespace mstv {

class Label {
 public:
  Label() = default;

  /// Takes the bits accumulated in a writer.
  explicit Label(const BitWriter& w) : words_(w.words()), nbits_(w.size_bits()) {
    normalize();
  }

  /// Steals the buffer of a spent writer — the common marker pattern
  /// `BitWriter w; ...; return Label(std::move(w));` costs no copy.
  explicit Label(BitWriter&& w)
      : words_(std::move(w).take_words()), nbits_(w.size_bits()) {
    normalize();
  }

  Label(std::vector<std::uint64_t> words, std::size_t nbits)
      : words_(std::move(words)), nbits_(nbits) {
    MSTV_EXPECTS(words_.size() * 64 >= nbits_);
    normalize();
  }

  [[nodiscard]] std::size_t size_bits() const noexcept { return nbits_; }
  [[nodiscard]] bool empty() const noexcept { return nbits_ == 0; }

  [[nodiscard]] BitReader reader() const { return BitReader(words_, nbits_); }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Value of bit i (0-based).
  [[nodiscard]] bool bit(std::size_t i) const {
    MSTV_EXPECTS(i < nbits_);
    return ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  /// Returns a copy with bit i flipped — fault injection / adversaries.
  [[nodiscard]] Label with_bit_flipped(std::size_t i) const;

  /// Returns a copy truncated to the first `nbits` bits — used by the
  /// lower-bound attack to model markers with a too-small budget.
  [[nodiscard]] Label truncated(std::size_t nbits) const;

  /// Concatenation (sublabel composition).
  [[nodiscard]] Label operator+(const Label& rhs) const;

  friend bool operator==(const Label& a, const Label& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Label& a, const Label& b) { return !(a == b); }

  /// Lexicographic order so labels can key ordered containers (the
  /// lower-bound counting experiment builds sets of labels).
  friend std::strong_ordering operator<=>(const Label& a, const Label& b) {
    if (auto c = a.words_ <=> b.words_; c != 0) return c;
    return a.nbits_ <=> b.nbits_;
  }

  /// "0"/"1" string, MSB... in write order; for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  /// Zeroes bits beyond nbits_ and trims excess words so equality is
  /// well defined.
  void normalize();

  std::vector<std::uint64_t> words_;
  std::size_t nbits_ = 0;
};

}  // namespace mstv
